"""Regeneration of paper Figures 2–5 (structures, checked edge-for-edge)."""

from __future__ import annotations

from repro.core.baseline import HopcroftKarpScheduler
from repro.experiments.registry import ExperimentResult, experiment
from repro.graphs.breaking import break_graph
from repro.graphs.conversion import CircularConversion, NonCircularConversion
from repro.graphs.request_graph import RequestGraph
from repro.util.tables import format_table

__all__ = ["fig2", "fig3", "fig4", "fig5"]

#: The running example of the paper: k = 6 wavelengths, degree d = 3
#: (e = f = 1), request vector [2, 1, 0, 1, 1, 2].
K, E, F = 6, 1, 1
REQUEST_VECTOR = (2, 1, 0, 1, 1, 2)


def _expected_circular_edges() -> set[tuple[int, int]]:
    """Fig. 2(a): λ_i → {(i-1) mod 6, i, (i+1) mod 6}."""
    return {
        (i, j) for i in range(K) for j in ((i - 1) % K, i, (i + 1) % K)
    }


def _expected_noncircular_edges() -> set[tuple[int, int]]:
    """Fig. 2(b): λ_i → [max(0, i-1), min(5, i+1)]."""
    return {
        (i, j)
        for i in range(K)
        for j in range(max(0, i - 1), min(K - 1, i + 1) + 1)
    }


@experiment("FIG2", "Conversion graphs, k=6, d=3 (paper Fig. 2)")
def fig2() -> ExperimentResult:
    """Regenerate both conversion graphs and compare edge sets with the
    figure's wiring."""
    circ = CircularConversion(K, E, F).conversion_graph()
    nonc = NonCircularConversion(K, E, F).conversion_graph()
    checks = {
        "circular edge set matches Fig. 2(a)": circ.edges()
        == frozenset(_expected_circular_edges()),
        "non-circular edge set matches Fig. 2(b)": nonc.edges()
        == frozenset(_expected_noncircular_edges()),
        "circular degree is d=3 everywhere": all(
            circ.degree_left(w) == 3 for w in range(K)
        ),
        "non-circular band edges have degree 2": nonc.degree_left(0) == 2
        and nonc.degree_left(K - 1) == 2,
    }
    rows = [
        (f"λ{w}",
         "{" + ", ".join(f"λ{b}" for b in CircularConversion(K, E, F).adjacency(w)) + "}",
         "{" + ", ".join(f"λ{b}" for b in NonCircularConversion(K, E, F).adjacency(w)) + "}")
        for w in range(K)
    ]
    table = format_table(
        ["input", "circular adjacency (2a)", "non-circular adjacency (2b)"],
        rows,
        title="Conversion graphs, k=6, e=f=1",
    )
    return ExperimentResult("FIG2", "Conversion graphs (Fig. 2)", (table,), checks)


@experiment("FIG3", "Request graphs for vector [2,1,0,1,1,2] (paper Fig. 3)")
def fig3() -> ExperimentResult:
    """Regenerate both request graphs for the running example."""
    rg_c = RequestGraph(CircularConversion(K, E, F), REQUEST_VECTOR)
    rg_n = RequestGraph(NonCircularConversion(K, E, F), REQUEST_VECTOR)

    # Left vertices: a0,a1 on λ0; a2 on λ1; a3 on λ3; a4 on λ4; a5,a6 on λ5.
    expected_wavelengths = (0, 0, 1, 3, 4, 5, 5)
    expected_c = {
        (a, b)
        for a, w in enumerate(expected_wavelengths)
        for b in ((w - 1) % K, w, (w + 1) % K)
    }
    expected_n = {
        (a, b)
        for a, w in enumerate(expected_wavelengths)
        for b in range(max(0, w - 1), min(K - 1, w + 1) + 1)
    }
    checks = {
        "W(i) ordering matches the figure": rg_c.left_wavelengths
        == expected_wavelengths,
        "W(0)=W(1)=0 and W(2)=1 (paper's example)": rg_c.wavelength_of(0) == 0
        and rg_c.wavelength_of(1) == 0
        and rg_c.wavelength_of(2) == 1,
        "circular request-graph edges match Fig. 3(a)": rg_c.graph.edges()
        == frozenset(expected_c),
        "non-circular request-graph edges match Fig. 3(b)": rg_n.graph.edges()
        == frozenset(expected_n),
        "7 requests vs 6 channels (contention)": rg_c.n_requests == 7,
    }
    rows = [
        (
            f"a{a}",
            f"λ{rg_c.wavelength_of(a)}",
            "{" + ", ".join(f"b{b}" for b in rg_c.graph.neighbors_of_left(a)) + "}",
            "{" + ", ".join(f"b{b}" for b in rg_n.graph.neighbors_of_left(a)) + "}",
        )
        for a in range(rg_c.n_requests)
    ]
    table = format_table(
        ["request", "wavelength", "B(a) circular (3a)", "B(a) non-circular (3b)"],
        rows,
        title="Request graphs for request vector [2,1,0,1,1,2]",
    )
    return ExperimentResult("FIG3", "Request graphs (Fig. 3)", (table,), checks)


@experiment("FIG4", "Maximum matchings of the Fig. 3 request graphs (paper Fig. 4)")
def fig4() -> ExperimentResult:
    """Find the maximum matchings; the paper shows both have cardinality 6
    (one of the seven requests is dropped)."""
    from repro.analysis.verify import assert_maximum_schedule
    from repro.core.break_first_available import BreakFirstAvailableScheduler
    from repro.core.first_available import FirstAvailableScheduler

    rg_c = RequestGraph(CircularConversion(K, E, F), REQUEST_VECTOR)
    rg_n = RequestGraph(NonCircularConversion(K, E, F), REQUEST_VECTOR)
    res_c = BreakFirstAvailableScheduler().schedule(rg_c)
    res_n = FirstAvailableScheduler().schedule(rg_n)
    hk = HopcroftKarpScheduler()
    checks = {
        "circular maximum matching has 6 edges": res_c.n_granted == 6,
        "non-circular maximum matching has 6 edges": res_n.n_granted == 6,
        "BFA matches Hopcroft-Karp": res_c.n_granted
        == hk.schedule(rg_c).n_granted,
        "FA matches Hopcroft-Karp": res_n.n_granted
        == hk.schedule(rg_n).n_granted,
        "exactly one request dropped": res_c.n_rejected == 1
        and res_n.n_rejected == 1,
    }
    # Certify maximality via augmenting-path absence too.
    assert_maximum_schedule(rg_c, res_c)
    assert_maximum_schedule(rg_n, res_n)
    checks["augmenting-path certificates hold"] = True

    rows = []
    for name, res in (("circular (4a)", res_c), ("non-circular (4b)", res_n)):
        assignment = ", ".join(
            f"λ{g.wavelength}→b{g.channel}" for g in sorted(
                res.grants, key=lambda g: g.channel
            )
        )
        rows.append((name, res.n_granted, res.n_rejected, assignment))
    table = format_table(
        ["conversion", "granted", "dropped", "assignment"],
        rows,
        title="Maximum matchings for request vector [2,1,0,1,1,2]",
    )
    return ExperimentResult("FIG4", "Maximum matchings (Fig. 4)", (table,), checks)


@experiment("FIG5", "Breaking the Fig. 3(a) graph at edge a2-b1 (paper Fig. 5)")
def fig5() -> ExperimentResult:
    """Break the circular request graph at a2 b1 and check the reduced
    graph's reordering and convexity against the figure."""
    rg = RequestGraph(CircularConversion(K, E, F), REQUEST_VECTOR)
    broken = break_graph(rg, 2, 1)
    intervals = broken.intervals()
    checks = {
        "left order starts at a3 (a3,a4,a5,a6,a0,a1)": broken.left_order
        == (3, 4, 5, 6, 0, 1),
        "right order starts at b2 (b2,b3,b4,b5,b0)": broken.right_order
        == (2, 3, 4, 5, 0),
        "reduced graph is convex (Lemma 2)": broken.is_convex,
        "BEGIN/END monotone (Lemma 2)": all(
            intervals[a][0] <= intervals[a + 1][0]
            and intervals[a][1] <= intervals[a + 1][1]
            for a in range(len(intervals) - 1)
            if intervals[a][1] >= intervals[a][0]
            and intervals[a + 1][1] >= intervals[a + 1][0]
        ),
        "break solves to a maximum matching of G": len(broken.solve())
        == HopcroftKarpScheduler().schedule(rg).n_granted,
    }
    rows = [
        (
            f"a{orig}",
            f"λ{rg.wavelength_of(orig)}",
            "∅"
            if intervals[new][1] < intervals[new][0]
            else "{"
            + ", ".join(
                f"b{broken.right_order[p]}"
                for p in range(intervals[new][0], intervals[new][1] + 1)
            )
            + "}",
        )
        for new, orig in enumerate(broken.left_order)
    ]
    table = format_table(
        ["request (shifted order)", "wavelength", "adjacency in G'"],
        rows,
        title="Reduced graph G' = break(G, a2 b1), shifted ordering (Fig. 5(b))",
    )
    return ExperimentResult("FIG5", "Breaking the request graph (Fig. 5)", (table,), checks)
