"""Hardware-implementation experiment (paper Sections III/IV hardware remarks).

Reproduced claims:

* a First Available unit schedules one output fiber in exactly ``k`` clock
  cycles, independent of ``N`` and ``d``;
* a serial BFA unit takes ``1 + d(k-1) + ceil(log2 d)`` cycles (``O(dk)``);
* ``d`` parallel units reduce that to ``1 + (k-1) + ceil(log2 d)`` (``O(k)``);
* hardware grants are identical to the software schedulers';
* at a period-appropriate clock the decision fits a μs-scale slot.
"""

from __future__ import annotations

from repro.core.break_first_available import bfa_fast
from repro.experiments.registry import ExperimentResult, experiment
from repro.hardware.bfa_unit import BreakFirstAvailableUnit, ParallelBFAUnit
from repro.hardware.fa_unit import FirstAvailableUnit
from repro.hardware.registers import RequestRegister
from repro.hardware.timing import CycleReport
from repro.util.rng import make_rng
from repro.util.tables import format_table

__all__ = ["hardware_cycles"]


@experiment("HW", "Hardware cycle counts and software equivalence")
def hardware_cycles(seed: int = 1010, slot_us: float = 1.0) -> ExperimentResult:
    """Cycle counts across (N, k, d); equivalence with software BFA."""
    rng = make_rng(seed)
    rows = []
    equal = True
    fa_cycles_ok = True
    fits = []
    for n_fibers, k, d in (
        (16, 8, 3),
        (64, 16, 3),
        (256, 16, 3),  # N sweep: cycles must not move
        (64, 32, 5),
        (64, 64, 5),
    ):
        e = (d - 1) // 2
        f = d - 1 - e
        requests = [
            (i, w)
            for i in range(n_fibers)
            for w in range(k)
            if rng.random() < 0.5 / n_fibers * 8
        ]
        vec = [0] * k
        for _i, w in requests:
            vec[w] += 1

        reg = RequestRegister.from_requests(n_fibers, k, requests)
        fa_grants, fa_cycles = FirstAvailableUnit(k, e, f).run(reg)
        fa_cycles_ok &= fa_cycles == k

        reg_s = RequestRegister.from_requests(n_fibers, k, requests)
        serial_grants, serial_cycles = BreakFirstAvailableUnit(k, e, f).run(reg_s)
        reg_p = RequestRegister.from_requests(n_fibers, k, requests)
        par_grants, par_cycles = ParallelBFAUnit(k, e, f).run(reg_p)

        sw_grants, _ = bfa_fast(vec, [True] * k, e, f)
        sw_pairs = sorted((g.wavelength, g.channel) for g in sw_grants)
        equal &= sorted((g.wavelength, g.channel) for g in serial_grants) == sw_pairs
        equal &= sorted((g.wavelength, g.channel) for g in par_grants) == sw_pairs

        report = CycleReport("parallel-BFA", k, d, par_cycles, hardware_units=d)
        fits.append(report.fits_slot(slot_us))
        rows.append(
            (n_fibers, k, d, len(requests), fa_cycles, serial_cycles, par_cycles,
             report.time_us)
        )
    table = format_table(
        ["N", "k", "d", "requests", "FA cycles", "BFA serial", "BFA parallel",
         "parallel time (µs)"],
        rows,
        title="Hardware scheduler cycle counts (200 MHz clock)",
    )
    n_sweep = [r for r in rows if r[1] == 16 and r[2] == 3]
    checks = {
        "FA completes in exactly k cycles": fa_cycles_ok,
        "cycle counts independent of N": len(
            {(r[4], r[5], r[6]) for r in n_sweep}
        ) == 1,
        "hardware grants == software grants": equal,
        "serial BFA is O(dk), parallel is O(k)": all(
            r[6] < r[5] or r[2] == 1 for r in rows
        ),
        f"parallel BFA fits a {slot_us} µs slot at k<=64": all(fits),
    }
    return ExperimentResult(
        "HW", "Hardware cycle counts", (table,), checks
    )
