"""Multi-tenant QoS experiment: weighted fair sharing under bursty overload.

The paper's fairness remark (Section III) is single-dimensional — random or
round-robin selection among contending *inputs*.  This experiment extends it
to the multi-tenant regime of the traffic-grooming literature: tenants with
weighted service contracts offer Markov-modulated ON/OFF bursts that
collectively oversubscribe the interconnect, and the
:class:`~repro.core.policies.WeightedFairPolicy` resolves same-wavelength
contention by deficit-weighted shares instead of input-id priority.

Measured: each tenant's achieved grant share vs its weight share, and the
starvation-freedom floor (every backlogged tenant keeps receiving grants).
"""

from __future__ import annotations

from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.core.policies import FixedPriorityPolicy, WeightedFairPolicy
from repro.experiments.registry import ExperimentResult, experiment
from repro.graphs.conversion import CircularConversion
from repro.sim.engine import SlottedSimulator
from repro.sim.traffic import (
    HotspotDestinations,
    MultiTenantOnOffTraffic,
    TenantSpec,
)
from repro.util.tables import format_table

__all__ = ["qos"]


def _tenant_grants(n_fibers: int, k: int, slots: int, seed: int, policy):
    """Run one overloaded multi-tenant sim; returns grants per tenant."""
    specs = (
        TenantSpec(0, weight=4, load=0.85, burst_length=6.0),
        TenantSpec(1, weight=2, load=0.85, burst_length=6.0),
        TenantSpec(2, weight=1, load=0.85, burst_length=6.0),
    )
    # A hotspot is what makes the policy matter: with uniform destinations
    # same-wavelength contention is rare and every tenant gets its offered
    # share regardless of weights.
    traffic = MultiTenantOnOffTraffic(
        n_fibers,
        k,
        specs,
        destinations=HotspotDestinations(n_fibers, hot_fiber=0, hot_fraction=0.9),
    )
    sim = SlottedSimulator(
        n_fibers,
        CircularConversion(k, 1, 1),
        BreakFirstAvailableScheduler(),
        traffic,
        policy=policy,
        seed=seed,
    )
    grants = {spec.tenant: 0 for spec in specs}
    submitted = dict(grants)
    for _ in range(slots):
        counters = sim.step()
        for t in counters["granted_tenants"]:
            grants[t] += 1
        for t in counters["submitted_tenants"]:
            submitted[t] += 1
    return specs, grants, submitted


@experiment("WFQ", "Weighted fair tenant shares under bursty overload")
def qos(
    n_fibers: int = 6,
    k: int = 6,
    slots: int = 600,
    seed: int = 1303,
) -> ExperimentResult:
    """Achieved vs contracted tenant shares for WFQ and fixed priority."""
    specs, wfq_grants, submitted = _tenant_grants(
        n_fibers, k, slots, seed, WeightedFairPolicy({0: 4, 1: 2, 2: 1})
    )
    _, fp_grants, _ = _tenant_grants(
        n_fibers, k, slots, seed, FixedPriorityPolicy()
    )

    total_w = sum(s.weight for s in specs)
    total_wfq = sum(wfq_grants.values()) or 1
    total_fp = sum(fp_grants.values()) or 1
    rows = []
    for s in specs:
        rows.append(
            (
                s.tenant,
                s.weight,
                s.weight / total_w,
                wfq_grants[s.tenant] / total_wfq,
                fp_grants[s.tenant] / total_fp,
                submitted[s.tenant],
            )
        )
    table = format_table(
        [
            "tenant",
            "weight",
            "weight share",
            "WFQ grant share",
            "fixed-prio share",
            "submitted",
        ],
        rows,
        title=(
            f"ON/OFF bursts, 90% hotspot to fiber 0, 3 tenants on "
            f"N={n_fibers}, k={k}, {slots} slots"
        ),
        float_fmt=".4f",
    )

    # Fairness claims.  Shares cannot track weights exactly (a tenant only
    # competes where its bursts land), so the checks are ordinal plus a
    # starvation floor: under WFQ, share order follows weight order, every
    # tenant gets a non-trivial share, and WFQ serves the lightest tenant
    # no worse than fixed priority does.
    w0, w1, w2 = (wfq_grants[s.tenant] / total_wfq for s in specs)
    f0 = fp_grants[0] / total_fp
    f2 = fp_grants[2] / total_fp
    checks = {
        "heavier tenants get larger WFQ shares": w0 > w1 > w2,
        "no tenant starves under WFQ (>= 5% of grants each)": min(
            w0, w1, w2
        )
        >= 0.05,
        "WFQ serves the weight-1 tenant better than fixed priority": w2 > f2,
        "WFQ compresses the share spread vs fixed priority": (w0 - w2)
        < (f0 - f2),
        "every tenant actually offered load": all(
            submitted[s.tenant] > 0 for s in specs
        ),
    }
    return ExperimentResult(
        "WFQ", "Weighted fair tenant shares", (table,), checks
    )
