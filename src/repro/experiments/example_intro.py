"""The paper's Section-I worked example.

k = 6 wavelengths, conversion degree d = 3 (e = f = 1): two requests on λ1,
three on λ2, one on λ4, all to one output fiber.  Full range conversion
grants all six; limited range grants only five, because the five λ1/λ2
requests can reach only the four channels {λ0, λ1, λ2, λ3}.
"""

from __future__ import annotations

from repro.core.baseline import HopcroftKarpScheduler
from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.core.full_range import FullRangeScheduler
from repro.experiments.registry import ExperimentResult, experiment
from repro.graphs.conversion import CircularConversion, FullRangeConversion
from repro.graphs.request_graph import RequestGraph
from repro.util.tables import format_table

__all__ = ["intro_example"]

REQUEST_VECTOR = (0, 2, 3, 0, 1, 0)  # 2 on λ1, 3 on λ2, 1 on λ4


@experiment("INTRO", "Section-I worked example: full vs limited range")
def intro_example() -> ExperimentResult:
    """Reproduce the introduction's contention example."""
    k = 6
    rg_full = RequestGraph(FullRangeConversion(k), REQUEST_VECTOR)
    rg_lim = RequestGraph(CircularConversion(k, 1, 1), REQUEST_VECTOR)

    full = FullRangeScheduler().schedule(rg_full)
    lim = BreakFirstAvailableScheduler().schedule(rg_lim)
    lim_opt = HopcroftKarpScheduler().schedule(rg_lim)

    # The paper's bottleneck: λ1 and λ2 requests can only reach λ0..λ3.
    reachable = set()
    for w in (1, 2):
        reachable.update(rg_lim.scheme.adjacency(w))
    checks = {
        "full range grants all 6": full.n_granted == 6,
        "limited range (d=3) grants only 5": lim.n_granted == 5,
        "BFA achieves the limited-range optimum": lim.n_granted
        == lim_opt.n_granted,
        "λ1/λ2 requests reach exactly {λ0..λ3}": reachable == {0, 1, 2, 3},
        "one λ1-or-λ2 request is dropped": sum(
            lim.rejected_vector[w] for w in (1, 2)
        ) == 1,
    }
    rows = [
        ("full range (d=6)", full.n_granted, full.n_rejected),
        ("limited range (d=3)", lim.n_granted, lim.n_rejected),
    ]
    table = format_table(
        ["conversion", "granted", "dropped"],
        rows,
        title="Six requests {2×λ1, 3×λ2, 1×λ4} on one 6-wavelength output fiber",
    )
    return ExperimentResult(
        "INTRO", "Section-I worked example", (table,), checks
    )
