"""Wavelength-pooling experiment (``PERF-K``): loss vs band size.

Classic trunking efficiency: at a fixed per-channel load, more wavelengths
per fiber pool the contention and lower the loss — steeply for full range
conversion (whose exact loss is the Binomial closed form of
:mod:`repro.analysis.analytical`, checked here point by point), much less so
for ``d = 3``, whose conversion window does not grow with ``k``.  This is
the system-design tradeoff behind the paper's premise that cheap small-``d``
converters must be used *well* (i.e. with optimal scheduling).
"""

from __future__ import annotations

from repro.analysis.analytical import full_range_loss_probability
from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.core.full_range import FullRangeScheduler
from repro.experiments.registry import ExperimentResult, experiment
from repro.graphs.conversion import CircularConversion, FullRangeConversion
from repro.sim.engine import SlottedSimulator
from repro.sim.traffic import BernoulliTraffic
from repro.util.tables import format_table

__all__ = ["size_sweep"]


@experiment("PERF-K", "Loss vs wavelengths per fiber (trunking efficiency)")
def size_sweep(
    n_fibers: int = 8,
    load: float = 0.9,
    slots: int = 400,
    seed: int = 8888,
) -> ExperimentResult:
    """Sweep k at fixed load for d=3 and full range; validate the full-range
    points against the exact closed form."""
    rows = []
    checks: dict[str, bool] = {}
    sim_full_losses = []
    sim_d3_losses = []
    for k in (4, 8, 16, 32):
        sim_d3 = SlottedSimulator(
            n_fibers,
            CircularConversion(k, 1, 1),
            BreakFirstAvailableScheduler(),
            BernoulliTraffic(n_fibers, k, load),
            seed=seed,
        ).run(slots, warmup=slots // 10).metrics.loss_probability
        sim_full = SlottedSimulator(
            n_fibers,
            FullRangeConversion(k),
            FullRangeScheduler(),
            BernoulliTraffic(n_fibers, k, load),
            seed=seed,
        ).run(slots, warmup=slots // 10).metrics.loss_probability
        analytic = full_range_loss_probability(n_fibers, k, load)
        rows.append((k, sim_d3, sim_full, analytic))
        sim_d3_losses.append(sim_d3)
        sim_full_losses.append(sim_full)
        checks[f"full-range point matches closed form (k={k})"] = (
            abs(sim_full - analytic) < 0.02
        )
    checks["full-range loss decreases with k (pooling gain)"] = (
        sim_full_losses == sorted(sim_full_losses, reverse=True)
    )
    checks["d=3 pooling gain is much weaker than full range"] = (
        sim_d3_losses[0] - sim_d3_losses[-1]
    ) < (sim_full_losses[0] - sim_full_losses[-1])
    table = format_table(
        ["k", "loss d=3", "loss full range", "full range closed form"],
        rows,
        title=f"Loss vs band size, N={n_fibers}, load {load}",
        float_fmt=".4f",
    )
    notes = (
        "Full range pools all k channels (Binomial trunking gain); a fixed "
        "d=3 window pools only 3 channels regardless of k.",
    )
    return ExperimentResult(
        "PERF-K", "Trunking efficiency vs k", (table,), checks, notes
    )
