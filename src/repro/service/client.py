"""In-process client API and a traffic-model load generator.

:class:`SchedulingClient` is the thin call-site facade
(``submit(request) -> ServiceGrant | Rejected``); :class:`LoadGenerator`
drives a service with the simulator's own traffic models
(:mod:`repro.sim.traffic`), one model slot per service tick, and reports
sustained request rate, grant rate, and exact grant-latency percentiles —
the numbers ``benchmarks/bench_service.py`` sweeps over shard counts.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.distributed import SlotRequest
from repro.service.server import (
    Rejected,
    RejectReason,
    SchedulingService,
    ServiceGrant,
)
from repro.sim.traffic import TrafficModel
from repro.util.rng import make_rng
from repro.util.validation import check_positive_int

__all__ = ["SchedulingClient", "LoadReport", "LoadGenerator"]


class SchedulingClient:
    """Submit requests to a running :class:`SchedulingService`."""

    def __init__(self, service: SchedulingService) -> None:
        self.service = service

    async def submit(
        self, request: SlotRequest, timeout: float | None = None
    ) -> ServiceGrant | Rejected:
        """Submit one request and await its outcome."""
        return await self.service.submit(request, timeout)

    async def submit_many(
        self, requests: Sequence[SlotRequest], timeout: float | None = None
    ) -> list[ServiceGrant | Rejected]:
        """Submit a batch concurrently; outcomes in submission order."""
        futures = [
            self.service.submit_nowait(r, timeout) for r in requests
        ]
        return list(await asyncio.gather(*futures))


@dataclass
class LoadReport:
    """What a :class:`LoadGenerator` run delivered."""

    offered: int
    granted: int
    rejected_contention: int
    rejected_source: int
    rejected_queue: int
    dropped: int
    timed_out: int
    slots: int
    wall_seconds: float
    #: Exact per-request submit→grant latencies, seconds, sorted ascending.
    grant_latencies: list[float] = field(repr=False, default_factory=list)

    @property
    def requests_per_sec(self) -> float:
        """Sustained offered-request throughput over the run."""
        return self.offered / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def grant_rate(self) -> float:
        return self.granted / self.offered if self.offered else 0.0

    def latency_quantile(self, q: float) -> float:
        """Exact ``q``-quantile of the grant latencies (0.0 when none)."""
        lat = self.grant_latencies
        if not lat:
            return 0.0
        idx = min(len(lat) - 1, max(0, round(q * (len(lat) - 1))))
        return lat[idx]

    @property
    def p50_latency(self) -> float:
        return self.latency_quantile(0.50)

    @property
    def p99_latency(self) -> float:
        return self.latency_quantile(0.99)


class LoadGenerator:
    """Drive a service with a :mod:`repro.sim.traffic` arrival process.

    Each traffic-model slot maps to one service tick: the generator submits
    slot ``t``'s packets, runs one tick, and repeats — then keeps ticking
    until every outstanding future has resolved.  With an unbounded queue,
    no timeout, and one tick per slot this reproduces the
    :class:`~repro.sim.engine.SlottedSimulator` workload exactly (the
    equivalence test in ``tests/test_service_equivalence.py`` checks the
    grants match decision-for-decision).
    """

    def __init__(
        self,
        service: SchedulingService,
        traffic: TrafficModel,
        seed: int | None = None,
        timeout: float | None = None,
    ) -> None:
        if traffic.n_fibers != service.n_fibers or traffic.k != service.scheme.k:
            raise ValueError(
                f"traffic model is {traffic.n_fibers}×{traffic.k}, "
                f"service is {service.n_fibers}×{service.scheme.k}"
            )
        self.service = service
        self.traffic = traffic
        self.timeout = timeout
        self._rng = make_rng(seed)

    async def run(self, n_slots: int) -> LoadReport:
        """Offer ``n_slots`` slots of traffic; returns the load report."""
        check_positive_int(n_slots, "n_slots")
        service = self.service
        futures: list[asyncio.Future] = []
        latencies: list[float] = []

        def _stamp(submitted_at: float, fut: asyncio.Future) -> None:
            # Runs on the loop pass right after the tick resolves the
            # future, so the stamp tracks grant time, not gather time.
            if isinstance(fut.result(), ServiceGrant):
                latencies.append(time.perf_counter() - submitted_at)

        t_start = time.perf_counter()
        for slot in range(n_slots):
            packets = self.traffic.arrivals(slot, self._rng)
            for p in packets:
                request = SlotRequest(
                    p.input_fiber,
                    p.wavelength,
                    p.output_fiber,
                    p.duration,
                    p.priority,
                )
                future = service.submit_nowait(request, self.timeout)
                future.add_done_callback(
                    lambda fut, t=time.perf_counter(): _stamp(t, fut)
                )
                futures.append(future)
            await service.tick()
            # Yield one loop pass so done-callbacks stamp *this* tick's
            # grants now, not in bulk when the run finishes (INLINE ticks
            # never suspend, so the loop would otherwise starve).
            await asyncio.sleep(0)
        await service.drain()
        await asyncio.sleep(0)
        results = await asyncio.gather(*futures)
        wall = time.perf_counter() - t_start

        counts = {reason: 0 for reason in RejectReason}
        granted = 0
        for outcome in results:
            if isinstance(outcome, ServiceGrant):
                granted += 1
            else:
                counts[outcome.reason] += 1
        latencies.sort()
        return LoadReport(
            offered=len(futures),
            granted=granted,
            rejected_contention=counts[RejectReason.CONTENTION],
            rejected_source=counts[RejectReason.SOURCE_BLOCKED],
            rejected_queue=counts[RejectReason.QUEUE_FULL],
            dropped=counts[RejectReason.DROPPED],
            timed_out=counts[RejectReason.TIMED_OUT],
            slots=n_slots,
            wall_seconds=wall,
            grant_latencies=latencies,
        )
