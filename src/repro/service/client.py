"""In-process client API, retrying submission, and a load generator.

:class:`SchedulingClient` is the thin call-site facade
(``submit(request) -> ServiceGrant | Rejected``); :class:`LoadGenerator`
drives a service with the simulator's own traffic models
(:mod:`repro.sim.traffic`), one model slot per service tick, and reports
sustained request rate, grant rate, and exact grant-latency percentiles —
the numbers ``benchmarks/bench_service.py`` sweeps over shard counts.

:meth:`SchedulingClient.submit_with_retry` adds the client half of the
fault story (``docs/ROBUSTNESS.md``): transient refusals — full queues,
drops, timeouts, down shards, open breakers — are retried with exponential
backoff and *full jitter* (``delay ~ U(0, min(max_delay, base·2^attempt))``,
the AWS-style scheme that de-correlates synchronized retry storms), under a
shared :class:`RetryBudget` so a mass outage cannot amplify itself through
retries.  Contention and source-blocked rejections are **not** retried by
default: they are the scheduler's verdict for this slot, not a fault.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.distributed import SlotRequest
from repro.errors import InvalidParameterError
from repro.service.server import (
    Rejected,
    RejectReason,
    SchedulingService,
    ServiceGrant,
)
from repro.service.telemetry import exponential_buckets
from repro.sim.traffic import TrafficModel
from repro.util.rng import make_rng
from repro.util.validation import check_positive_int

__all__ = [
    "RetryPolicy",
    "RetryBudget",
    "SchedulingClient",
    "LoadReport",
    "LoadGenerator",
]

#: Rejection reasons that are transient faults, worth retrying.
#: ``DUPLICATE`` is here because it means "your original is still in
#: flight" — the retry loop should back off and ask again, at which point
#: the server replays the grant or the released id gets a fresh attempt.
RETRYABLE_REASONS = frozenset(
    {
        RejectReason.QUEUE_FULL,
        RejectReason.DROPPED,
        RejectReason.TIMED_OUT,
        RejectReason.SHARD_DOWN,
        RejectReason.CIRCUIT_OPEN,
        RejectReason.DUPLICATE,
    }
)

#: Process-wide client numbering, so every client's request_ids are unique
#: within (at least) one service's dedup table.
_CLIENT_IDS = itertools.count()

#: Attempt-count histogram buckets (1 … 32 attempts).
_ATTEMPT_BUCKETS = exponential_buckets(1.0, 2.0, 6)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full jitter.

    ``max_attempts`` bounds total tries (first attempt included); the sleep
    before retry ``i`` (0-based) is drawn uniformly from
    ``[0, min(max_delay, base_delay * 2**i)]``.  ``retryable`` defaults to
    the transient-fault reasons (:data:`RETRYABLE_REASONS`).
    """

    max_attempts: int = 4
    base_delay: float = 0.001
    max_delay: float = 0.05
    retryable: frozenset[RejectReason] = RETRYABLE_REASONS

    def __post_init__(self) -> None:
        check_positive_int(self.max_attempts, "max_attempts")
        if self.base_delay < 0 or self.max_delay < 0:
            raise InvalidParameterError(
                f"delays must be >= 0, got base={self.base_delay}, "
                f"max={self.max_delay}"
            )

    def delay(self, attempt: int, rng) -> float:
        """Jittered sleep before retry number ``attempt`` (0-based)."""
        cap = min(self.max_delay, self.base_delay * (2.0**attempt))
        return float(rng.uniform(0.0, cap)) if cap > 0 else 0.0


class RetryBudget:
    """A shared token bucket that caps total retry amplification.

    Every retry spends one token; every successful first-try-or-retried
    grant refills ``refill_per_success`` tokens (capped at the initial
    ``tokens``).  When the bucket is empty, clients stop retrying and
    surface the rejection — the standard guard against retry storms making
    an outage worse.  One budget is typically shared by every client of a
    service.

    Thread-safe: one budget may be shared by submitters on different
    threads/event loops, so ``try_spend``/``refill`` are a lock-guarded
    read-modify-write (the unlocked float arithmetic they replaced could
    lose or double-count tokens under that sharing —
    ``tests/test_concurrency_audit.py`` pins the exact accounting down).
    """

    def __init__(
        self, tokens: float = 100.0, refill_per_success: float = 0.1
    ) -> None:
        if tokens <= 0:
            raise InvalidParameterError(f"tokens must be > 0, got {tokens}")
        if refill_per_success < 0:
            raise InvalidParameterError(
                f"refill_per_success must be >= 0, got {refill_per_success}"
            )
        self.capacity = float(tokens)
        self.refill_per_success = float(refill_per_success)
        self._tokens = float(tokens)
        self._lock = threading.Lock()

    @property
    def tokens(self) -> float:
        """Tokens currently available."""
        with self._lock:
            return self._tokens

    def try_spend(self) -> bool:
        """Take one token if available; False means stop retrying."""
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False

    def refill(self) -> None:
        with self._lock:
            self._tokens = min(
                self.capacity, self._tokens + self.refill_per_success
            )

    def __repr__(self) -> str:
        return f"RetryBudget(tokens={self.tokens:.1f}/{self.capacity:.0f})"


class SchedulingClient:
    """Submit requests to a running :class:`SchedulingService`.

    ``seed`` feeds the retry jitter (deterministic chaos runs); telemetry
    for retries lands on the *service's* registry (``client.retries``,
    ``client.retry_exhausted``, ``client.attempts``) so one snapshot shows
    both sides of the conversation.
    """

    def __init__(
        self, service: SchedulingService, seed: int | None = None
    ) -> None:
        self.service = service
        self._rng = make_rng(seed)
        self._client_id = next(_CLIENT_IDS)
        self._request_seq = itertools.count()
        t = service.telemetry
        self._c_retries = t.counter("client.retries")
        self._c_retry_exhausted = t.counter("client.retry_exhausted")
        self._c_wait_timeouts = t.counter("client.wait_timeouts")
        self._h_attempts = t.histogram("client.attempts", _ATTEMPT_BUCKETS)

    def _next_request_id(self) -> str:
        """A fresh idempotency key: unique per client and per request."""
        return f"c{self._client_id}-{next(self._request_seq)}"

    async def submit(
        self, request: SlotRequest, timeout: float | None = None
    ) -> ServiceGrant | Rejected:
        """Submit one request and await its outcome."""
        return await self.service.submit(request, timeout)

    async def submit_many(
        self, requests: Sequence[SlotRequest], timeout: float | None = None
    ) -> list[ServiceGrant | Rejected]:
        """Submit a batch concurrently; outcomes in submission order."""
        futures = [
            self.service.submit_nowait(r, timeout) for r in requests
        ]
        return list(await asyncio.gather(*futures))

    async def submit_with_retry(
        self,
        request: SlotRequest,
        timeout: float | None = None,
        policy: RetryPolicy | None = None,
        budget: RetryBudget | None = None,
        *,
        attempt_timeout: float | None = None,
        request_id: str | None = None,
    ) -> ServiceGrant | Rejected:
        """Submit with backoff+jitter retries on transient-fault rejections.

        Returns the grant, the first non-retryable rejection, or — when
        attempts or the shared budget run out — the *last* rejection seen,
        so the caller always learns the terminal reason.  Deadlines
        (``timeout``) apply per attempt.

        Every attempt carries the same idempotency key (``request_id``,
        auto-stamped when not given), so resubmitting after an
        ``attempt_timeout`` — giving up *waiting* while the original may
        still be queued — cannot double-schedule: the server's dedup table
        replays the original grant or answers ``DUPLICATE``
        (exactly-once; see ``docs/SERVICE.md``).  When every attempt times
        out client-side, returns ``Rejected(TIMED_OUT, slot=None)`` —
        ``slot=None`` marking it as a client-side verdict, not the
        server's.
        """
        policy = policy if policy is not None else RetryPolicy()
        if attempt_timeout is not None and attempt_timeout <= 0:
            raise InvalidParameterError(
                f"attempt_timeout must be > 0, got {attempt_timeout}"
            )
        if request_id is None:
            request_id = self._next_request_id()
        attempts = 0
        outcome: ServiceGrant | Rejected | None = None
        while True:
            future = self.service.submit_nowait(
                request, timeout, request_id=request_id
            )
            attempts += 1
            if attempt_timeout is None:
                outcome = await future
            else:
                try:
                    # shield(): abandoning the wait must not cancel the
                    # request already sitting in the shard queue — the
                    # server still resolves it, and the dedup table turns
                    # the resubmission below into a replayed grant or a
                    # DUPLICATE instead of a double booking.
                    outcome = await asyncio.wait_for(
                        asyncio.shield(future), attempt_timeout
                    )
                except asyncio.TimeoutError:
                    outcome = None
                    self._c_wait_timeouts.inc()
            if isinstance(outcome, ServiceGrant):
                if budget is not None:
                    budget.refill()
                break
            if outcome is not None and outcome.reason not in policy.retryable:
                break
            if attempts >= policy.max_attempts:
                self._c_retry_exhausted.inc()
                break
            if budget is not None and not budget.try_spend():
                self._c_retry_exhausted.inc()
                break
            self._c_retries.inc()
            delay = policy.delay(attempts - 1, self._rng)
            if delay > 0:
                await asyncio.sleep(delay)
            else:
                # Zero-delay retries still yield, so manually driven ticks
                # (tests, chaos drills) can interleave with the retry loop.
                await asyncio.sleep(0)
        self._h_attempts.observe(attempts)
        if outcome is None:
            return Rejected(request, RejectReason.TIMED_OUT, None)
        return outcome


@dataclass
class LoadReport:
    """What a :class:`LoadGenerator` run delivered."""

    offered: int
    granted: int
    rejected_contention: int
    rejected_source: int
    rejected_queue: int
    dropped: int
    timed_out: int
    slots: int
    wall_seconds: float
    #: Fault-path rejections (zero in a fault-free run).
    shard_down: int = 0
    circuit_open: int = 0
    #: Duplicate-id refusals (zero unless callers resubmit request_ids).
    duplicate: int = 0
    #: Exact per-request submit→grant latencies, seconds, sorted ascending.
    grant_latencies: list[float] = field(repr=False, default_factory=list)

    @property
    def requests_per_sec(self) -> float:
        """Sustained offered-request throughput over the run."""
        return self.offered / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def grant_rate(self) -> float:
        return self.granted / self.offered if self.offered else 0.0

    def latency_quantile(self, q: float) -> float:
        """Exact ``q``-quantile of the grant latencies (0.0 when none)."""
        lat = self.grant_latencies
        if not lat:
            return 0.0
        idx = min(len(lat) - 1, max(0, round(q * (len(lat) - 1))))
        return lat[idx]

    @property
    def p50_latency(self) -> float:
        return self.latency_quantile(0.50)

    @property
    def p99_latency(self) -> float:
        return self.latency_quantile(0.99)


class LoadGenerator:
    """Drive a service with a :mod:`repro.sim.traffic` arrival process.

    Each traffic-model slot maps to one service tick: the generator submits
    slot ``t``'s packets, runs one tick, and repeats — then keeps ticking
    until every outstanding future has resolved.  With an unbounded queue,
    no timeout, and one tick per slot this reproduces the
    :class:`~repro.sim.engine.SlottedSimulator` workload exactly (the
    equivalence test in ``tests/test_service_equivalence.py`` checks the
    grants match decision-for-decision).
    """

    def __init__(
        self,
        service: SchedulingService,
        traffic: TrafficModel,
        seed: int | None = None,
        timeout: float | None = None,
    ) -> None:
        if traffic.n_fibers != service.n_fibers or traffic.k != service.scheme.k:
            raise ValueError(
                f"traffic model is {traffic.n_fibers}×{traffic.k}, "
                f"service is {service.n_fibers}×{service.scheme.k}"
            )
        self.service = service
        self.traffic = traffic
        self.timeout = timeout
        self._rng = make_rng(seed)

    async def run(self, n_slots: int) -> LoadReport:
        """Offer ``n_slots`` slots of traffic; returns the load report."""
        check_positive_int(n_slots, "n_slots")
        service = self.service
        futures: list[asyncio.Future] = []
        latencies: list[float] = []

        def _stamp(submitted_at: float, fut: asyncio.Future) -> None:
            # Runs on the loop pass right after the tick resolves the
            # future, so the stamp tracks grant time, not gather time.
            if isinstance(fut.result(), ServiceGrant):
                latencies.append(time.perf_counter() - submitted_at)

        t_start = time.perf_counter()
        for slot in range(n_slots):
            packets = self.traffic.arrivals(slot, self._rng)
            for p in packets:
                request = SlotRequest(
                    p.input_fiber,
                    p.wavelength,
                    p.output_fiber,
                    p.duration,
                    p.priority,
                )
                future = service.submit_nowait(request, self.timeout)
                future.add_done_callback(
                    lambda fut, t=time.perf_counter(): _stamp(t, fut)
                )
                futures.append(future)
            await service.tick()
            # Yield one loop pass so done-callbacks stamp *this* tick's
            # grants now, not in bulk when the run finishes (INLINE ticks
            # never suspend, so the loop would otherwise starve).
            await asyncio.sleep(0)
        await service.drain()
        await asyncio.sleep(0)
        results = await asyncio.gather(*futures)
        wall = time.perf_counter() - t_start

        counts = {reason: 0 for reason in RejectReason}
        granted = 0
        for outcome in results:
            if isinstance(outcome, ServiceGrant):
                granted += 1
            else:
                counts[outcome.reason] += 1
        latencies.sort()
        return LoadReport(
            offered=len(futures),
            granted=granted,
            rejected_contention=counts[RejectReason.CONTENTION],
            rejected_source=counts[RejectReason.SOURCE_BLOCKED],
            rejected_queue=counts[RejectReason.QUEUE_FULL],
            dropped=counts[RejectReason.DROPPED],
            timed_out=counts[RejectReason.TIMED_OUT],
            slots=n_slots,
            wall_seconds=wall,
            shard_down=counts[RejectReason.SHARD_DOWN],
            circuit_open=counts[RejectReason.CIRCUIT_OPEN],
            duplicate=counts[RejectReason.DUPLICATE],
            grant_latencies=latencies,
        )
