"""Crash-consistent shard durability: snapshot + journal-suffix replay.

:class:`DurabilityManager` owns one write-ahead journal
(:mod:`repro.service.journal`) and one snapshot store
(:mod:`repro.service.snapshot`) per shard and implements the recovery
contract the kill-at-every-tick test gates on
(``tests/test_durability.py``):

    load the latest valid snapshot, replay every journal record from the
    snapshot's tick onward in append order, and the rebuilt shard is
    **bit-identical** to one that never crashed.  ``EVICT`` records (the
    per-tenant admission shed) replay as a delete at the journaled queue
    index, so mid-queue sheds recover exactly like front-of-queue drains.

Replay is exact — unlike PR 4's aged checkpoints — because the server
journals an ``ADVANCE`` for *every* shard each tick, down ones included:
the optical connections ``busy[]`` tracks live in the interconnect, so the
physical clock keeps ticking while a worker is dead, and recovery is pure
redo with no aging formula.

The manager never touches worker objects (symmetry with
:class:`~repro.service.supervisor.ShardSupervisor`): the server journals
events, asks :meth:`DurabilityManager.maybe_snapshot` at tick boundaries,
and applies :meth:`DurabilityManager.recover`'s result to a fresh worker.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.errors import InvalidParameterError
from repro.service.journal import (
    FileJournal,
    JournalRecord,
    MemoryJournal,
    RecordType,
    ShardJournal,
)
from repro.service.snapshot import (
    FileSnapshotStore,
    MemorySnapshotStore,
    ShardSnapshot,
    SnapshotStore,
)
from repro.service.telemetry import exponential_buckets
from repro.util.validation import check_nonnegative_int, check_positive_int

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.telemetry import Telemetry

__all__ = [
    "DurabilityConfig",
    "RecoveredShardState",
    "DurabilityManager",
    "replay_journal",
]

#: Recovery-time buckets: 1 µs … ~1 s.
_RECOVERY_BUCKETS = exponential_buckets(1e-6, 2.0, 20)


@dataclass(frozen=True)
class DurabilityConfig:
    """Tuning for the durability layer.

    ``snapshot_interval`` — snapshot every shard's state entering every
    multiple of this tick (1 = every tick; snapshots bound journal growth
    and replay length, they are never needed for correctness).
    ``backend`` — ``"memory"`` (default: survives worker crashes, cheap
    enough for the hot path, the <10% ``bench_journal`` budget) or
    ``"file"`` (survives process death; requires ``directory``).
    ``fsync`` — file backend only: fsync after every journal append
    (power-loss durability at a large latency cost).
    ``retain_snapshots`` — snapshots kept per shard; the journal is
    compacted up to the oldest retained one.
    ``dedup_capacity`` — bound on the server's request-id dedup table for
    exactly-once grant semantics (0 disables deduplication).
    """

    snapshot_interval: int = 16
    backend: str = "memory"
    directory: str | os.PathLike | None = None
    fsync: bool = False
    retain_snapshots: int = 2
    dedup_capacity: int = 4096

    def __post_init__(self) -> None:
        check_positive_int(self.snapshot_interval, "snapshot_interval")
        check_positive_int(self.retain_snapshots, "retain_snapshots")
        check_nonnegative_int(self.dedup_capacity, "dedup_capacity")
        if self.backend not in ("memory", "file"):
            raise InvalidParameterError(
                f"backend must be 'memory' or 'file', got {self.backend!r}"
            )
        if self.backend == "file" and self.directory is None:
            raise InvalidParameterError(
                "the file backend needs directory= for its .wal and .snap files"
            )


@dataclass(frozen=True, slots=True)
class RecoveredShardState:
    """What recovery rebuilt, and how.

    ``source`` is ``"snapshot+journal"`` (a snapshot anchored the replay),
    ``"journal"`` (no snapshot yet — replayed from tick 0), or ``"cold"``
    (no durable state at all: the shard is genuinely fresh).  ``tick`` is
    the tick the state is valid *entering*; ``queue`` holds request
    6-tuples (:func:`repro.service.journal.request_tuple` form; pre-tenant
    5-value records are normalized to tenant 0) in FIFO order, which the
    server cross-checks against the surviving live queue.
    """

    shard: int
    tick: int
    busy: tuple[int, ...]
    queue: tuple[tuple[int, int, int, int, int, int], ...]
    policy_state: object | None
    source: str
    snapshot_tick: int | None
    replayed_records: int
    torn_tail: bool


def replay_journal(
    records: Iterable[JournalRecord],
    snapshot: ShardSnapshot | None,
    k: int,
) -> tuple[list[int], tuple[tuple[int, ...], ...], int, int]:
    """Deterministically apply the journal suffix on top of ``snapshot``.

    Returns ``(busy, queue, tick, replayed_count)``.  Records older than
    the snapshot's tick are skipped (their effects are inside the
    snapshot); ``FAULT`` and ``SNAPSHOT`` records are audit-only.  The
    function is pure redo: ``GRANT`` books a channel, ``ADVANCE`` ages
    every channel by one slot and moves the tick forward, ``ACCEPT`` /
    ``DEQUEUE`` rebuild the queue.

    A batched ``ADVANCE`` (``values = (count,)``, written by
    :meth:`~repro.service.journal.ShardJournal.flush_deferred`) ages every
    channel by ``count`` slots.  One that *spans* the snapshot tick —
    compaction keeps the whole record when any covered tick is at or past
    the cutoff — is clipped: only the ticks from the snapshot onward are
    applied, since the earlier ones are already inside the snapshot.
    """
    if snapshot is not None:
        busy = list(snapshot.busy)
        queue: deque[tuple[int, ...]] = deque(
            _widen(tuple(entry)) for entry in snapshot.queue
        )
        tick = start = snapshot.tick
    else:
        busy = [0] * k
        queue = deque()
        tick = start = 0
    replayed = 0
    for rec in records:
        if rec.type is RecordType.ADVANCE:
            # () advances one tick; (count,) advances count consecutive
            # ticks from rec.tick.  Clip to the suffix past the snapshot.
            count = rec.values[0] if rec.values else 1
            end = rec.tick + count
            if end <= start:
                continue
            replayed += 1
            eff = end - max(rec.tick, start)
            busy = [b - eff if b > eff else 0 for b in busy]
            tick = end
            continue
        if rec.tick < start:
            continue
        replayed += 1
        if rec.type is RecordType.GRANT:
            # One or more (input, wavelength, channel, duration) 4-tuples
            # back to back (the server batches a tick's grants per shard).
            vals = rec.values
            for i in range(0, len(vals), 4):
                busy[vals[i + 2]] = vals[i + 3]
        elif rec.type is RecordType.ACCEPT:
            queue.append(_widen(rec.values))
        elif rec.type is RecordType.DEQUEUE:
            for _ in range(rec.values[0]):
                if queue:
                    queue.popleft()
        elif rec.type is RecordType.EVICT:
            idx = rec.values[0]
            if 0 <= idx < len(queue):
                del queue[idx]
        # FAULT / SNAPSHOT: no state effect.
    return busy, tuple(queue), tick, replayed


def _widen(values: tuple[int, ...]) -> tuple[int, ...]:
    """Normalize a pre-tenant 5-value request tuple to the 6-value form."""
    return values if len(values) != 5 else values + (0,)


class DurabilityManager:
    """Per-shard journals + snapshot store + the recovery path."""

    def __init__(
        self,
        config: DurabilityConfig,
        n_shards: int,
        k: int,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self.config = config
        self.k = k
        if config.backend == "file":
            directory = Path(config.directory)  # type: ignore[arg-type]
            self._journals = [
                ShardJournal(
                    FileJournal(
                        directory / f"shard-{o:04d}.wal", fsync=config.fsync
                    ),
                    telemetry,
                )
                for o in range(n_shards)
            ]
            self.store: SnapshotStore = FileSnapshotStore(directory)
        else:
            self._journals = [
                ShardJournal(MemoryJournal(), telemetry) for _ in range(n_shards)
            ]
            self.store = MemorySnapshotStore()
        if telemetry is not None:
            self._c_snapshots = telemetry.counter("durability.snapshots")
            self._c_recoveries = telemetry.counter("durability.recoveries")
            self._c_torn = telemetry.counter("durability.torn_tails")
            self._h_recovery = telemetry.histogram(
                "durability.recovery_seconds", _RECOVERY_BUCKETS
            )
            self._g_replay = telemetry.gauge("durability.replay_records")
        else:
            self._c_snapshots = self._c_recoveries = self._c_torn = None
            self._h_recovery = self._g_replay = None

    def journal(self, shard: int) -> ShardJournal:
        return self._journals[shard]

    # -- snapshots -----------------------------------------------------------

    def due_snapshot(self, entering_tick: int) -> bool:
        """True when shard state entering ``entering_tick`` should be
        snapshotted (never tick 0 — that state is the known all-free one)."""
        return (
            entering_tick > 0
            and entering_tick % self.config.snapshot_interval == 0
        )

    def take_snapshot(
        self,
        shard: int,
        entering_tick: int,
        busy: Sequence[int],
        queue: Iterable[tuple[int, int, int, int, int, int]],
        policy_state: object | None,
    ) -> None:
        """Persist one shard's state entering ``entering_tick``, prune old
        snapshots, and compact the journal up to the oldest retained one."""
        self.store.save(
            ShardSnapshot(
                shard,
                entering_tick,
                tuple(int(b) for b in busy),
                tuple(tuple(entry) for entry in queue),
                policy_state,
            )
        )
        self.store.prune(shard, self.config.retain_snapshots)
        journal = self._journals[shard]
        journal.snapshot_mark(entering_tick)
        retained = self.store.ticks(shard)
        if retained:
            journal.compact(retained[0])
        if self._c_snapshots is not None:
            self._c_snapshots.inc()

    # -- recovery ------------------------------------------------------------

    def recover(self, shard: int) -> RecoveredShardState:
        """Rebuild ``shard``'s state from durable bytes only.

        Reads the snapshot store and re-decodes the journal's durable
        bytes (not the in-memory mirror), so the result is exactly what a
        restarted process would reconstruct — including tolerance of a
        torn record at the journal tail.
        """
        t0 = time.perf_counter()
        snapshot = self.store.latest(shard)
        records, torn = self._journals[shard].reload()
        busy, queue, tick, replayed = replay_journal(
            records, snapshot, self.k
        )
        if snapshot is not None:
            source = "snapshot+journal"
        elif records:
            source = "journal"
        else:
            source = "cold"
        if self._c_recoveries is not None:
            self._c_recoveries.inc()
            if torn:
                self._c_torn.inc()
            self._h_recovery.observe(time.perf_counter() - t0)
            self._g_replay.set(replayed)
        return RecoveredShardState(
            shard=shard,
            tick=tick,
            busy=tuple(busy),
            queue=queue,
            policy_state=snapshot.policy_state if snapshot is not None else None,
            source=source,
            snapshot_tick=snapshot.tick if snapshot is not None else None,
            replayed_records=replayed,
            torn_tail=torn,
        )

    def close(self) -> None:
        for journal in self._journals:
            journal.close()
        self.store.close()
