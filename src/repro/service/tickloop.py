"""The input-side admission state machine shared by every tick loop.

Step 2 of a slot tick — expire deadlines, reject requests whose input
channel is already transmitting (*blocked at source*: one laser, one
signal) — is the part of the tick that lives **above** the shards: it
needs the global input-side busy matrix, not any one output fiber's
state.  It is split out of ``server.py`` so the in-process service
(:class:`~repro.service.server.SchedulingService`) and the multi-process
parent (:class:`~repro.net.procservice.ProcessShardedService`) run the
*same* admission code — the slot-by-slot equivalence gate covers both
through one implementation.

The contract mirrors ``SlottedSimulator.step`` exactly: shards are
visited in ascending output-fiber order, requests in FIFO order, and
within one tick an earlier surviving request blocks a later one on the
same ``(input_fiber, wavelength)``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.distributed import SlotRequest
    from repro.service.edge import PendingRequest

__all__ = ["InputAdmission"]


class InputAdmission:
    """Blocked-at-source admission over the ``n_fibers × k`` input matrix.

    ``in_busy[f][w]`` is the number of future slots input channel
    ``(f, w)`` is still held by a granted connection.  One tick is::

        seen = admission.begin_tick()
        for shard in fiber order:
            survivors, expired, blocked = admission.admit(drained, now, seen)
            ...schedule survivors...
        for each grant: admission.hold(request)
        admission.decay()
    """

    __slots__ = ("in_busy",)

    def __init__(self, n_fibers: int, k: int) -> None:
        self.in_busy: list[list[int]] = [[0] * k for _ in range(n_fibers)]

    def begin_tick(self) -> set[tuple[int, int]]:
        """Fresh per-tick set of input channels claimed by survivors."""
        return set()

    def admit(
        self,
        drained: "list[PendingRequest]",
        now: float,
        seen_inputs: set[tuple[int, int]],
        slot: int | None = None,
    ) -> "tuple[list[PendingRequest], list[PendingRequest], list[PendingRequest]]":
        """Partition ``drained`` into ``(survivors, expired, blocked)``.

        Deadline expiry is checked first (a request that waited too long
        is TIMED_OUT even if its input is also busy), then the busy
        matrix and this tick's earlier survivors.  Survivors claim their
        input in ``seen_inputs`` as a side effect.  Expiry honors both
        deadline flavors: wall-clock (``deadline`` vs ``now``) and slot
        (``deadline_slot`` vs ``slot`` — the deterministic form wire
        ``timeout_ticks`` maps to; ignored when the caller passes no
        slot).
        """
        survivors: "list[PendingRequest]" = []
        expired: "list[PendingRequest]" = []
        blocked: "list[PendingRequest]" = []
        for p in drained:
            r = p.request
            if (p.deadline is not None and now >= p.deadline) or (
                p.deadline_slot is not None
                and slot is not None
                and slot >= p.deadline_slot
            ):
                expired.append(p)
            elif (
                self.in_busy[r.input_fiber][r.wavelength] > 0
                or (r.input_fiber, r.wavelength) in seen_inputs
            ):
                blocked.append(p)
            else:
                seen_inputs.add((r.input_fiber, r.wavelength))
                survivors.append(p)
        return survivors, expired, blocked

    def hold(self, request: "SlotRequest") -> None:
        """A grant committed: hold the input for the connection's duration."""
        self.in_busy[request.input_fiber][request.wavelength] = request.duration

    def decay(self) -> None:
        """End of tick: one slot elapses on every held input channel."""
        for row in self.in_busy:
            for w, left in enumerate(row):
                if left > 0:
                    row[w] = left - 1
