"""Built-in service telemetry: counters, gauges, and histograms.

The scheduling service instruments every layer — queues, shards, the tick
loop — through one :class:`Telemetry` registry, so a single
:meth:`~Telemetry.snapshot` answers the operational questions: offered load,
grant rate, queue depths, channel occupancy, grant latency, and slot-tick
duration.  The primitives are deliberately tiny and dependency-free
(Prometheus-style naming, fixed-bucket histograms) and thread-safe, because
shards may run on executor threads while the event loop reads gauges.

Conservation invariant (tested): every submitted request resolves exactly
once, so the outcome counters partition the offered load::

    submitted == granted + rejected_contention + rejected_source
               + rejected_queue_full + dropped + timed_out + shutdown
               + shard_down + circuit_open + duplicate + admission_shed
               + rate_limited + unavailable

``shard_down``/``circuit_open`` are fault-path outcomes (see
:mod:`repro.faults` and ``docs/ROBUSTNESS.md``): requests refused because
the owning shard was down, or short-circuited by that shard's open circuit
breaker.  ``duplicate`` counts submissions deduplicated by request id —
each resolved immediately with the original's grant or a ``DUPLICATE``
refusal, never scheduled again (exactly-once; ``docs/SERVICE.md``).
``admission_shed`` counts requests shed by per-tenant admission control
(the ``SHED`` overflow policy — eviction *or* refusal at the door).
``rate_limited`` counts requests refused at the edge by the per-tenant
token-bucket limiter (:mod:`repro.service.ratelimit`) — resolved before
ever touching a queue or shard.  ``unavailable`` counts requests typed
out by an edge↔worker partition (the owning worker process stayed
unreachable through the pool's respawn budget — graceful degradation,
not a hang; ``docs/ROBUSTNESS.md``).  All six are zero in a fault-free,
retry-free, unlimited-queue, unlimited-rate run, reducing the invariant
to its original form.

The same partition holds **per tenant**: the edge mirrors the aggregate
counters as ``tenant.<id>.submitted`` / ``tenant.<id>.granted`` /
``tenant.<id>.rejected.<reason>``, so conservation can be asserted for
every tenant independently (the multi-tenant chaos drill does exactly
that).  :class:`SloAccountant` folds those ledgers into per-tenant /
per-class service-level reports.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable, Mapping, Sequence

from repro.errors import InvalidParameterError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Telemetry",
    "SloAccountant",
    "exponential_buckets",
]


def exponential_buckets(start: float, factor: float, count: int) -> tuple[float, ...]:
    """``count`` exponentially spaced upper bounds starting at ``start``.

    The standard latency-histogram layout: ``start, start*factor, ...``;
    an implicit ``+inf`` bucket always follows the last bound.
    """
    if start <= 0 or factor <= 1.0 or count < 1:
        raise InvalidParameterError(
            f"need start > 0, factor > 1, count >= 1; "
            f"got {start}, {factor}, {count}"
        )
    return tuple(start * factor**i for i in range(count))


#: Default grant-latency buckets: 50 µs … ~26 s in ×2 steps.
LATENCY_BUCKETS = exponential_buckets(50e-6, 2.0, 20)


class Counter:
    """Monotonic event counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise InvalidParameterError(f"counter increment must be >= 0, got {n}")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """Last-write-wins instantaneous value (queue depth, occupancy)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with quantile estimation.

    ``buckets`` are ascending upper bounds; an implicit overflow bucket
    catches everything above the last bound.  Quantiles are estimated by
    linear interpolation inside the winning bucket (clamped to the observed
    min/max), which is plenty for p50/p99 reporting and keeps ``observe``
    O(log B) with no per-sample storage.
    """

    __slots__ = ("_lock", "bounds", "_counts", "_count", "_sum", "_min", "_max")

    def __init__(self, buckets: Sequence[float] = LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise InvalidParameterError(
                f"histogram buckets must be non-empty and ascending, got {buckets!r}"
            )
        self._lock = threading.Lock()
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        # bisect over the bounds; len(bounds) is the overflow bucket.
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        with self._lock:
            self._counts[lo] += 1
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 <= q <= 1``); 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise InvalidParameterError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = q * self._count
            seen = 0.0
            for i, c in enumerate(self._counts):
                if c == 0:
                    continue
                if seen + c >= rank:
                    lo = self.bounds[i - 1] if i > 0 else self._min
                    hi = self.bounds[i] if i < len(self.bounds) else self._max
                    lo = max(lo, self._min)
                    hi = min(hi, self._max)
                    if hi <= lo or c == 0:
                        return lo
                    frac = (rank - seen) / c
                    return lo + frac * (hi - lo)
                seen += c
            return self._max

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            count, total = self._count, self._sum
        return {
            "count": count,
            "sum": total,
            "mean": total / count if count else 0.0,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
            "max": self._max if count else 0.0,
        }


class Telemetry:
    """Get-or-create registry for the service's metrics.

    Names are dot-separated (``server.granted``, ``shard.3.queue_depth``).
    Registering the same name twice returns the same instrument; registering
    it as a different *kind* is an error (it would silently split a metric).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _check_free(self, name: str, kind: str) -> None:
        for other_kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if other_kind != kind and name in table:
                raise InvalidParameterError(
                    f"metric {name!r} already registered as a {other_kind}"
                )

    def counter(self, name: str) -> Counter:
        with self._lock:
            self._check_free(name, "counter")
            return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            self._check_free(name, "gauge")
            return self._gauges.setdefault(name, Gauge())

    def histogram(
        self, name: str, buckets: Sequence[float] | None = None
    ) -> Histogram:
        with self._lock:
            self._check_free(name, "histogram")
            if name not in self._histograms:
                self._histograms[name] = Histogram(buckets or LATENCY_BUCKETS)
            return self._histograms[name]

    def counters(self, prefix: str = "") -> dict[str, int]:
        """Current counter values, optionally filtered by name prefix."""
        return {
            name: c.value
            for name, c in sorted(self._counters.items())
            if name.startswith(prefix)
        }

    def snapshot(self) -> dict[str, object]:
        """One plain-data view of every instrument (safe to serialize)."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.snapshot() for n, h in sorted(self._histograms.items())
            },
        }

    def render(self) -> str:
        """Human-readable export (the demo and benchmark print this)."""
        snap = self.snapshot()
        lines: list[str] = []
        counters: Mapping[str, int] = snap["counters"]  # type: ignore[assignment]
        gauges: Mapping[str, float] = snap["gauges"]  # type: ignore[assignment]
        hists: Mapping[str, Mapping[str, float]] = snap["histograms"]  # type: ignore[assignment]
        if counters:
            lines.append("counters:")
            lines.extend(f"  {n:<40} {v}" for n, v in counters.items())
        if gauges:
            lines.append("gauges:")
            lines.extend(f"  {n:<40} {v:g}" for n, v in gauges.items())
        if hists:
            lines.append("histograms:")
            for n, h in hists.items():
                lines.append(
                    f"  {n:<40} count={h['count']:.0f} mean={h['mean']:.6f} "
                    f"p50={h['p50']:.6f} p99={h['p99']:.6f} max={h['max']:.6f}"
                )
        return "\n".join(lines)


class SloAccountant:
    """Per-tenant / per-class service-level accounting.

    A tiny outcome ledger keyed ``(tenant, priority_class)``: feed it one
    :meth:`record` per resolved request (``"granted"`` or a reject-reason
    string), set grant-ratio floors with :meth:`set_target`, and
    :meth:`report` answers whether each tenant — optionally each class
    within it — met its service level over the window.

    It is deliberately decoupled from :class:`Telemetry` (plain dicts, no
    instruments): the QoS experiment and chaos drill drive it from resolved
    futures, and nothing on the tick path pays for it unless wired in.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # (tenant, class) -> [submitted, granted, {reason: count}]
        self._cells: dict[tuple[int, int], list] = {}
        # (tenant, class | None) -> min grant ratio; None = all classes.
        self._targets: dict[tuple[int, int | None], float] = {}

    def set_target(
        self,
        tenant: int,
        min_grant_ratio: float,
        priority: int | None = None,
    ) -> None:
        """Require ``granted/submitted >= min_grant_ratio`` for ``tenant``
        (one class when ``priority`` is given, the tenant rollup when
        ``None``)."""
        if not 0.0 <= min_grant_ratio <= 1.0:
            raise InvalidParameterError(
                f"min_grant_ratio must be in [0, 1], got {min_grant_ratio}"
            )
        self._targets[(tenant, priority)] = float(min_grant_ratio)

    def record(self, tenant: int, priority: int, outcome: str) -> None:
        """Account one resolved request: ``outcome`` is ``"granted"`` or a
        reject-reason string (``RejectReason.value``)."""
        key = (int(tenant), int(priority))
        with self._lock:
            cell = self._cells.get(key)
            if cell is None:
                cell = self._cells[key] = [0, 0, {}]
            cell[0] += 1
            if outcome == "granted":
                cell[1] += 1
            else:
                cell[2][outcome] = cell[2].get(outcome, 0) + 1

    def grant_ratio(self, tenant: int, priority: int | None = None) -> float:
        """Observed ``granted/submitted`` (1.0 when nothing submitted)."""
        submitted = granted = 0
        with self._lock:
            for (t, cls), cell in self._cells.items():
                if t == tenant and (priority is None or cls == priority):
                    submitted += cell[0]
                    granted += cell[1]
        return granted / submitted if submitted else 1.0

    def report(self) -> dict[str, object]:
        """Plain-data SLO report.

        ``cells`` maps ``"tenant/class"`` to its ledger; ``tenants`` maps
        each tenant id to its rollup (submitted, granted, grant_ratio,
        target, met); ``all_met`` is the single pass/fail bit the drills
        gate on (targets with no traffic count as met).
        """
        with self._lock:
            cells = {
                f"{t}/{cls}": {
                    "submitted": cell[0],
                    "granted": cell[1],
                    "rejected": dict(sorted(cell[2].items())),
                }
                for (t, cls), cell in sorted(self._cells.items())
            }
            tenants_seen = sorted({t for t, _cls in self._cells})
        tenants: dict[int, dict[str, object]] = {}
        all_met = True
        for t in tenants_seen:
            ratio = self.grant_ratio(t)
            target = self._targets.get((t, None))
            met = target is None or ratio >= target
            tenants[t] = {
                "grant_ratio": ratio,
                "target": target,
                "met": met,
            }
            all_met = all_met and met
        for (t, cls), target in sorted(
            (k, v) for k, v in self._targets.items() if k[1] is not None
        ):
            ratio = self.grant_ratio(t, cls)
            met = ratio >= target
            tenants.setdefault(t, {})[f"class_{cls}"] = {
                "grant_ratio": ratio,
                "target": target,
                "met": met,
            }
            all_met = all_met and met
        return {"cells": cells, "tenants": tenants, "all_met": all_met}


def merge_counters(snapshots: Iterable[Mapping[str, int]]) -> dict[str, int]:
    """Sum counter maps across services (multi-instance aggregation)."""
    out: dict[str, int] = {}
    for snap in snapshots:
        for name, value in snap.items():
            out[name] = out.get(name, 0) + value
    return out
