"""repro.service — the online scheduling service.

The paper proves the per-slot scheduling problem decomposes into ``N``
independent per-output sub-problems, each solvable in ``O(k)`` / ``O(dk)``.
This package serves that shape: one shard worker per output fiber
(:mod:`~repro.service.shard`), bounded per-shard request queues with
explicit backpressure (:mod:`~repro.service.queue`), an asyncio tick loop
that batches submissions into slots and fans them out
(:mod:`~repro.service.server`), a client/load-generator API
(:mod:`~repro.service.client`), and built-in telemetry
(:mod:`~repro.service.telemetry`).

Quickstart
----------
>>> import asyncio
>>> from repro import BreakFirstAvailableScheduler, CircularConversion
>>> from repro.core.distributed import SlotRequest
>>> from repro.service import SchedulingService
>>> async def demo():
...     service = SchedulingService(
...         4, CircularConversion(6, 1, 1), BreakFirstAvailableScheduler()
...     )
...     future = service.submit_nowait(SlotRequest(0, 2, 3))
...     await service.tick()
...     return await future
>>> asyncio.run(demo()).channel
2

See ``docs/SERVICE.md`` for the architecture and
``benchmarks/bench_service.py`` for throughput/latency numbers.
"""

from repro.service.autoscaler import (
    Autoscaler,
    AutoscalerConfig,
    ScaleDecision,
)
from repro.service.breaker import BreakerConfig, BreakerState, CircuitBreaker
from repro.service.client import (
    LoadGenerator,
    LoadReport,
    RetryBudget,
    RetryPolicy,
    SchedulingClient,
)
from repro.service.durability import (
    DurabilityConfig,
    DurabilityManager,
    RecoveredShardState,
    replay_journal,
)
from repro.service.edge import PendingRequest, SubmissionEdge
from repro.service.journal import (
    FileJournal,
    JournalRecord,
    MemoryJournal,
    RecordType,
    ShardJournal,
)
from repro.service.queue import (
    BoundedQueue,
    Offer,
    OverflowPolicy,
    TenantAdmission,
)
from repro.service.ratelimit import RateLimitConfig, TokenBucketLimiter
from repro.service.resharding import (
    HandoffPayload,
    MigrationReport,
    ShardMigrator,
    ShardMove,
    plan_waves,
    wave_bound,
)
from repro.service.server import (
    ExecutionMode,
    Rejected,
    RejectReason,
    SchedulingService,
    ServiceGrant,
)
from repro.service.shard import ShardWorker
from repro.service.snapshot import (
    FileSnapshotStore,
    MemorySnapshotStore,
    ShardSnapshot,
)
from repro.service.supervisor import ShardSupervisor, SupervisorConfig
from repro.service.telemetry import (
    Counter,
    Gauge,
    Histogram,
    SloAccountant,
    Telemetry,
    exponential_buckets,
)

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "BoundedQueue",
    "BreakerConfig",
    "BreakerState",
    "CircuitBreaker",
    "Counter",
    "DurabilityConfig",
    "DurabilityManager",
    "ExecutionMode",
    "FileJournal",
    "FileSnapshotStore",
    "Gauge",
    "HandoffPayload",
    "Histogram",
    "JournalRecord",
    "LoadGenerator",
    "LoadReport",
    "MemoryJournal",
    "MemorySnapshotStore",
    "MigrationReport",
    "Offer",
    "OverflowPolicy",
    "PendingRequest",
    "RateLimitConfig",
    "RecordType",
    "RecoveredShardState",
    "Rejected",
    "RejectReason",
    "RetryBudget",
    "RetryPolicy",
    "ScaleDecision",
    "SchedulingClient",
    "SchedulingService",
    "ServiceGrant",
    "ShardJournal",
    "ShardMigrator",
    "ShardMove",
    "ShardSnapshot",
    "ShardSupervisor",
    "ShardWorker",
    "SloAccountant",
    "SubmissionEdge",
    "SupervisorConfig",
    "Telemetry",
    "TenantAdmission",
    "TokenBucketLimiter",
    "exponential_buckets",
    "plan_waves",
    "replay_journal",
    "wave_bound",
]
