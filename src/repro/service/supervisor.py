"""Shard supervision: crash detection, checkpointed state, delayed restart.

A :class:`~repro.service.shard.ShardWorker` that crashes — by injection
(:class:`~repro.faults.ShardCrash`) or organically (its tick raised) — loses
its in-memory channel-occupancy state ``busy[]``.  Losing that state is not
just a throughput hiccup: a restarted shard that believes every channel is
free will double-book channels still held by in-flight multi-slot
connections.  The supervisor therefore keeps a per-shard *checkpoint* of
``busy[]`` (taken each tick, after the clock advance, so a checkpoint for
tick ``t`` describes the state entering ``t``) and restores it on restart,
aged by the downtime::

    restored[b] = max(0, checkpoint[b] - (restart_tick - checkpoint_tick))

Aging is exact, not approximate: ``busy[]`` decays by exactly one per tick
whether or not the shard is running, because the optical connections it
tracks live in the interconnect, not in the worker process.

Restarts are delayed by ``restart_delay_ticks`` (≥ 1), modelling the real
cost of re-spawning a worker; during the gap the shard refuses requests
(``SHARD_DOWN``) and its circuit breaker is forced open.  All timing is in
slot ticks — deterministic, like everything else in the chaos harness.

With the durability layer on (the default — see
:mod:`repro.service.durability`), restarts are seeded by exact
snapshot+journal replay instead of aged checkpoints; the supervisor then
only tracks downtime and restart accounting (:meth:`restore_source`).
The aged-checkpoint path remains the fallback when durability is disabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.util.validation import check_nonnegative_int, check_positive_int

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.telemetry import Telemetry

__all__ = ["SupervisorConfig", "ShardSupervisor"]


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision tuning, in slot ticks.

    ``restart_delay_ticks`` — ticks a crashed shard stays down before the
    supervisor restarts it (≥ 1: a crash is never healed in the same tick
    it happened, so a crash slot always observes the outage).
    ``checkpoint_interval`` — take a ``busy[]`` checkpoint every this many
    ticks (1 = every tick; larger values trade restart fidelity for a
    little less copying, aging still keeps the restored state safe because
    ``busy`` only ever decays between grants the crashed shard missed).
    """

    restart_delay_ticks: int = 1
    checkpoint_interval: int = 1

    def __post_init__(self) -> None:
        check_positive_int(self.restart_delay_ticks, "restart_delay_ticks")
        check_positive_int(self.checkpoint_interval, "checkpoint_interval")


class ShardSupervisor:
    """Bookkeeping half of shard supervision (the server does the spawning).

    The supervisor never touches a worker object: it records checkpoints and
    crash times, decides *when* a shard is due for restart, and produces the
    aged ``busy[]`` to seed the replacement with.  Keeping it pure data makes
    the restart logic unit-testable without an event loop.
    """

    def __init__(
        self,
        config: SupervisorConfig | None = None,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self.config = config or SupervisorConfig()
        #: shard -> (checkpoint tick, busy[] copy); checkpoint tick is the
        #: tick the state is valid *entering*.
        self._checkpoints: dict[int, tuple[int, list[int]]] = {}
        self._down_since: dict[int, int] = {}
        #: shard -> how its last restart was seeded ("snapshot+journal",
        #: "journal", "checkpoint", or "cold") — restart accounting for
        #: the chaos drill's never-cold assertion.
        self._restore_sources: dict[int, str] = {}
        self._telemetry = telemetry
        self._restarts = (
            telemetry.counter("server.shard_restarts")
            if telemetry is not None
            else None
        )

    # -- state views ---------------------------------------------------------

    @property
    def down_shards(self) -> tuple[int, ...]:
        """Shards currently crashed and awaiting restart (sorted)."""
        return tuple(sorted(self._down_since))

    def is_down(self, shard: int) -> bool:
        return shard in self._down_since

    def checkpoint_of(self, shard: int) -> tuple[int, list[int]] | None:
        """Latest checkpoint ``(tick, busy[])`` for introspection/tests."""
        entry = self._checkpoints.get(shard)
        return (entry[0], list(entry[1])) if entry is not None else None

    def restore_source(self, shard: int) -> str | None:
        """How ``shard``'s most recent restore was seeded (None = never
        restored): ``"snapshot+journal"`` / ``"journal"`` when durability
        replayed it, ``"checkpoint"`` for the aged-checkpoint fallback,
        ``"cold"`` when no durable state existed at all."""
        return self._restore_sources.get(shard)

    # -- protocol ------------------------------------------------------------

    def note_checkpoint(
        self, shard: int, tick: int, busy: Sequence[int]
    ) -> None:
        """Record ``busy[]`` as the state entering ``tick``.

        Called by the server after each tick's clock advance; ticks that
        fall between ``checkpoint_interval`` boundaries are skipped.  Down
        shards are not checkpointed (their live state is gone — the last
        good checkpoint is exactly what the restart needs).
        """
        check_nonnegative_int(tick, "tick")
        if shard in self._down_since:
            return
        if tick % self.config.checkpoint_interval != 0:
            return
        self._checkpoints[shard] = (tick, list(busy))

    def record_crash(self, shard: int, tick: int) -> None:
        """Mark ``shard`` as crashed at ``tick`` (idempotent while down)."""
        check_nonnegative_int(tick, "tick")
        self._down_since.setdefault(shard, tick)

    def due_for_restart(self, tick: int) -> tuple[int, ...]:
        """Shards whose ``restart_delay_ticks`` have elapsed by ``tick``."""
        return tuple(
            sorted(
                s
                for s, since in self._down_since.items()
                if tick - since >= self.config.restart_delay_ticks
            )
        )

    def restore_busy(self, shard: int, tick: int, k: int) -> list[int]:
        """The aged ``busy[]`` a shard restarted at ``tick`` must start with.

        Falls back to an all-free vector when the shard crashed before its
        first checkpoint.
        """
        entry = self._checkpoints.get(shard)
        if entry is None:
            return [0] * k
        ckpt_tick, busy = entry
        age = max(0, tick - ckpt_tick)
        return [max(0, b - age) for b in busy]

    def mark_restarted(self, shard: int, source: str = "checkpoint") -> None:
        """Clear the down mark after the server has spawned the new worker.

        ``source`` records how the replacement's state was seeded (see
        :meth:`restore_source`); each restore also lands on a
        ``server.restore.<source>`` counter so the chaos drill can assert
        the cold path was never taken.
        """
        self._restore_sources[shard] = source
        if self._telemetry is not None:
            self._telemetry.counter(
                f"server.restore.{source.replace('+', '_')}"
            ).inc()
        if shard in self._down_since:
            del self._down_since[shard]
            if self._restarts is not None:
                self._restarts.inc()

    def __repr__(self) -> str:
        return (
            f"ShardSupervisor(down={list(self.down_shards)}, "
            f"checkpoints={len(self._checkpoints)})"
        )
