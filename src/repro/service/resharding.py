"""Live shard migration: quiesce → export → adopt → flip → release.

The paper fixes each output fiber's scheduler in place; a production
service must move shards between workers **while traffic flows**.  This
module is that engine, built directly on the PR-5 durability substrate:
a shard's complete worker-side state is its write-ahead journal (plus,
for partitioned policies, its slice of grant-policy state), and replaying
that journal is already proven bit-identical to never having crashed —
so a migration is nothing more than handing the journal to a new owner
and letting the same replay rebuild the same ``busy[]`` clocks.

The migration state machine, driven between ticks (the quiesce point —
no tick is ever in flight when the engine runs)::

      QUIESCE          tick boundary reached; source still authoritative
        |
      EXPORT           source serializes shard → HandoffPayload
        |                (journal records + policy slice + busy/tick)
      ADOPT            destination rewrites its journal from the payload,
        |                replays it, reports the rebuilt (tick, busy[])
      [verify]         engine cross-checks replica == exported state
        |
      FLIP             placement map now names the destination (atomic:
        |                a dict write between ticks; next tick routes there)
      RELEASE          source closes + deletes its copy, drops its policy
        |                slice (cleanup only — destination is authoritative)
      DONE

Every arrow is a crash point (:class:`repro.faults.CrashPoints` names
``resharding.quiesce`` … ``resharding.release``), and the engine is
**re-drivable from any of them**: before the flip the source never
stopped being authoritative (a retry simply re-exports); after the flip
the destination is authoritative and a retry only re-runs the idempotent
release cleanup.  In-flight grants are never redelivered twice: the
journal travels whole, so the new owner answers a redelivered tick from
the same GRANT records the old owner would have — the exactly-once
redelivery contract of :mod:`repro.net.procpool`, preserved across the
move.

Simultaneous moves are planned as conflict-free **waves**
(:func:`plan_waves`): within one wave no worker appears in two moves at
all — in particular never as both a source and a destination — so a
wave's transfers never contend for one worker's pipe and a wave can be
executed in any order (or concurrently).  Greedy first-fit gives the
documented bound of ``2·Δ − 1`` waves, where ``Δ`` is the maximum number
of moves touching any single worker (each move conflicts with at most
``Δ − 1`` others at its source and ``Δ − 1`` at its destination;
property-tested in ``tests/test_wave_planner.py``).  The framing follows
the complex-coloring treatment of parallel switch scheduling (Wang & Ye,
arXiv:1606.07226): simultaneous moves are an edge-coloring problem, not
a serial queue.
"""

from __future__ import annotations

import json
import struct
import time
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.errors import InvalidParameterError, MigrationError
from repro.faults.crashpoints import CrashPoints
from repro.service.journal import JournalRecord, decode_records, encode_record
from repro.service.telemetry import exponential_buckets

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.telemetry import Telemetry

__all__ = [
    "PHASE_QUIESCE",
    "PHASE_EXPORT",
    "PHASE_ADOPT",
    "PHASE_FLIP",
    "PHASE_RELEASE",
    "MIGRATION_PHASES",
    "ShardMove",
    "plan_waves",
    "max_move_degree",
    "wave_bound",
    "HandoffPayload",
    "MigrationReport",
    "ShardMigrator",
]

#: Crash-point names, one per arrow of the migration state machine.
PHASE_QUIESCE = "resharding.quiesce"
PHASE_EXPORT = "resharding.export"
PHASE_ADOPT = "resharding.adopt"
PHASE_FLIP = "resharding.flip"
PHASE_RELEASE = "resharding.release"
MIGRATION_PHASES = (
    PHASE_QUIESCE,
    PHASE_EXPORT,
    PHASE_ADOPT,
    PHASE_FLIP,
    PHASE_RELEASE,
)

#: Migration-pause buckets: 100 µs … ~100 s.
_PAUSE_BUCKETS = exponential_buckets(100e-6, 2.0, 20)


# -- wave planning -----------------------------------------------------------


@dataclass(frozen=True, slots=True, order=True)
class ShardMove:
    """One planned migration: ``shard`` moves ``source`` → ``destination``."""

    shard: int
    source: int
    destination: int

    def __post_init__(self) -> None:
        if self.source == self.destination:
            raise InvalidParameterError(
                f"move of shard {self.shard} has source == destination "
                f"== {self.source}"
            )


def max_move_degree(moves: Sequence[ShardMove]) -> int:
    """``Δ``: the largest number of moves touching any single worker."""
    degree: dict[int, int] = {}
    for m in moves:
        degree[m.source] = degree.get(m.source, 0) + 1
        degree[m.destination] = degree.get(m.destination, 0) + 1
    return max(degree.values(), default=0)


def wave_bound(moves: Sequence[ShardMove]) -> int:
    """The planner's documented worst case: ``2·Δ − 1`` waves (0 for no
    moves).  First-fit cannot need more: when a move is placed, only the
    ``Δ − 1`` other moves at its source and ``Δ − 1`` at its destination
    can have filled earlier waves."""
    d = max_move_degree(moves)
    return 2 * d - 1 if d else 0


def plan_waves(moves: Iterable[ShardMove]) -> list[list[ShardMove]]:
    """Color ``moves`` into conflict-free waves.

    Within a wave every worker participates in **at most one** move —
    stronger than the minimum requirement (no worker as both source and
    destination), and operationally right: one transfer at a time per
    worker keeps each worker's migration pause bounded by a single
    handoff.  Deterministic: moves are processed in ``(shard, source,
    destination)`` order and first-fit placed, so every caller plans the
    identical waves.  At most :func:`wave_bound` waves are produced.
    """
    ordered = sorted(moves)
    seen_shards: set[int] = set()
    for m in ordered:
        if m.shard in seen_shards:
            raise InvalidParameterError(
                f"shard {m.shard} appears in two moves of one plan"
            )
        seen_shards.add(m.shard)
    waves: list[list[ShardMove]] = []
    participants: list[set[int]] = []
    for m in ordered:
        for wave, busy in zip(waves, participants):
            if m.source not in busy and m.destination not in busy:
                wave.append(m)
                busy.add(m.source)
                busy.add(m.destination)
                break
        else:
            waves.append([m])
            participants.append({m.source, m.destination})
    return waves


# -- handoff payload ---------------------------------------------------------

_MAGIC = b"RHND"
_VERSION = 1
_HEADER = struct.Struct("!HIIQ")  # version, shard, k, next_tick
_U32 = struct.Struct("!I")
_U64 = struct.Struct("!Q")


@dataclass(frozen=True, slots=True)
class HandoffPayload:
    """Everything a new owner needs to *become* the shard.

    ``journal`` is the shard's complete write-ahead journal, encoded
    record stream (:func:`repro.service.journal.encode_record` framing);
    ``busy``/``next_tick`` are the exporter's live state, carried so the
    adopter can prove its replay reconstructed the identical replica.
    ``policy_state`` is the grant policy's per-output slice
    (:meth:`~repro.core.policies.GrantPolicy.export_output_state`);
    ``snapshot`` optionally carries an encoded
    :class:`~repro.service.snapshot.ShardSnapshot` for journals that have
    been compacted against one (the in-process durability path — worker
    journals are never compacted and ship ``None``).
    """

    shard: int
    k: int
    next_tick: int
    busy: tuple[int, ...]
    journal: bytes
    policy_state: object | None = None
    snapshot: bytes | None = None

    def records(self) -> list[JournalRecord]:
        """Decode the journal stream (a torn tail here is corruption —
        the exporter serialized from memory, not from a crashed file)."""
        records, _consumed, torn = decode_records(self.journal)
        if torn:
            raise MigrationError(
                f"handoff payload for shard {self.shard} carries a torn "
                "journal stream"
            )
        return records

    @classmethod
    def from_records(
        cls,
        shard: int,
        k: int,
        next_tick: int,
        busy: Sequence[int],
        records: Iterable[JournalRecord],
        policy_state: object | None = None,
        snapshot: bytes | None = None,
    ) -> "HandoffPayload":
        return cls(
            shard=shard,
            k=k,
            next_tick=next_tick,
            busy=tuple(int(b) for b in busy),
            journal=b"".join(encode_record(r) for r in records),
            policy_state=policy_state,
            snapshot=snapshot,
        )

    # -- codec (the bytes that cross a wire or land in a CI artifact) -------

    def encode(self) -> bytes:
        if len(self.busy) != self.k:
            raise InvalidParameterError(
                f"busy has {len(self.busy)} entries for k={self.k}"
            )
        parts = [
            _HEADER.pack(_VERSION, self.shard, self.k, self.next_tick),
            struct.pack(f"!{self.k}Q", *self.busy),
            _U64.pack(len(self.journal)),
            self.journal,
        ]
        if self.policy_state is None:
            parts.append(b"\x00")
        else:
            blob = json.dumps(
                self.policy_state, separators=(",", ":"), sort_keys=True
            ).encode("utf-8")
            parts.append(b"\x01" + _U32.pack(len(blob)) + blob)
        if self.snapshot is None:
            parts.append(b"\x00")
        else:
            parts.append(b"\x01" + _U64.pack(len(self.snapshot)) + self.snapshot)
        body = b"".join(parts)
        return _MAGIC + body + _U32.pack(zlib.crc32(body))

    @classmethod
    def decode(cls, data: bytes) -> "HandoffPayload":
        if len(data) < len(_MAGIC) + _HEADER.size + _U32.size:
            raise MigrationError(
                f"handoff payload truncated at {len(data)} bytes"
            )
        if data[:4] != _MAGIC:
            raise MigrationError(
                f"bad handoff magic {data[:4]!r} (want {_MAGIC!r})"
            )
        body, (crc,) = data[4:-4], _U32.unpack(data[-4:])
        if zlib.crc32(body) != crc:
            raise MigrationError("handoff payload CRC mismatch")
        try:
            version, shard, k, next_tick = _HEADER.unpack_from(body, 0)
            if version != _VERSION:
                raise MigrationError(
                    f"handoff payload version {version} not supported "
                    f"(this build speaks {_VERSION})"
                )
            off = _HEADER.size
            busy = struct.unpack_from(f"!{k}Q", body, off)
            off += 8 * k
            (journal_len,) = _U64.unpack_from(body, off)
            off += _U64.size
            journal = body[off : off + journal_len]
            if len(journal) != journal_len:
                raise MigrationError("handoff journal stream truncated")
            off += journal_len
            policy_state = None
            if body[off]:
                (blob_len,) = _U32.unpack_from(body, off + 1)
                blob = body[off + 1 + _U32.size : off + 1 + _U32.size + blob_len]
                policy_state = json.loads(blob.decode("utf-8"))
                off += 1 + _U32.size + blob_len
            else:
                off += 1
            snapshot = None
            if body[off]:
                (snap_len,) = _U64.unpack_from(body, off + 1)
                snapshot = body[off + 1 + _U64.size : off + 1 + _U64.size + snap_len]
                if len(snapshot) != snap_len:
                    raise MigrationError("handoff snapshot truncated")
                off += 1 + _U64.size + snap_len
            else:
                off += 1
            if off != len(body):
                raise MigrationError(
                    f"{len(body) - off} bytes of trailing garbage in "
                    "handoff payload"
                )
        except (struct.error, ValueError, IndexError) as exc:
            raise MigrationError(f"malformed handoff payload: {exc}") from exc
        return cls(
            shard=shard,
            k=k,
            next_tick=next_tick,
            busy=busy,
            journal=journal,
            policy_state=policy_state,
            snapshot=snapshot,
        )


# -- the engine --------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class MigrationReport:
    """What one completed migration did.

    ``resumed`` is True when the engine found the flip already done (a
    prior attempt crashed between FLIP and RELEASE) and only re-ran the
    cleanup.  ``pause_seconds`` is the wall-clock span the service could
    not tick — the number ``bench_reshard`` divides by the baseline tick
    time to gate "ticks stalled per move".
    """

    shard: int
    source: int
    destination: int
    payload_bytes: int
    journal_records: int
    next_tick: int
    pause_seconds: float
    resumed: bool = False
    wave: int | None = None


class ShardMigrator:
    """Drives live migrations over a worker pool.

    ``pool`` is duck-typed (so this module never imports
    :mod:`repro.net`): it must offer ``placement`` (a live ``shard →
    worker`` dict), ``set_owner(shard, worker)``, ``active_workers()``,
    and ``call(worker, op, *args)`` speaking the ``export_shard`` /
    ``adopt_shard`` / ``release_shard`` worker ops of
    :func:`repro.net.procpool.worker_main`.  The caller must invoke the
    engine **between ticks** — the quiesce phase is free because nothing
    is ever in flight at that boundary.
    """

    def __init__(self, pool, telemetry: "Telemetry | None" = None) -> None:
        self.pool = pool
        if telemetry is not None:
            self._c_migrations = telemetry.counter("reshard.migrations")
            self._c_resumed = telemetry.counter("reshard.resumed")
            self._c_waves = telemetry.counter("reshard.waves")
            self._c_bytes = telemetry.counter("reshard.bytes_transferred")
            self._h_pause = telemetry.histogram(
                "reshard.pause_seconds", _PAUSE_BUCKETS
            )
        else:
            self._c_migrations = self._c_resumed = None
            self._c_waves = self._c_bytes = self._h_pause = None

    # -- one move ------------------------------------------------------------

    def migrate(
        self,
        shard: int,
        destination: int,
        *,
        crashpoints: CrashPoints | None = None,
        wave: int | None = None,
    ) -> MigrationReport:
        """Move ``shard`` to ``destination``; re-drivable after any crash.

        Raises :class:`MigrationError` when the move is ill-formed or the
        adopted replica does not verify; raises
        :class:`~repro.errors.CrashPointError` when an armed crash point
        fires (re-invoke to resume — every phase is safe to die at).
        """
        cp = crashpoints if crashpoints is not None else CrashPoints()
        t0 = time.perf_counter()
        active = set(self.pool.active_workers())
        if destination not in active:
            raise MigrationError(
                f"destination worker {destination} is not active"
            )
        source = self.pool.placement.get(shard)
        if source is None:
            raise MigrationError(f"shard {shard} is not placed")
        if source == destination:
            # A prior attempt died between FLIP and RELEASE: the
            # destination is already authoritative, only the cleanup can
            # be outstanding.  Release everywhere else (idempotent no-op
            # on workers that never held the shard).
            for w in sorted(active - {destination}):
                self.pool.call(w, "release_shard", shard)
            cp.reached(PHASE_RELEASE)
            report = MigrationReport(
                shard=shard,
                source=source,
                destination=destination,
                payload_bytes=0,
                journal_records=0,
                next_tick=-1,
                pause_seconds=time.perf_counter() - t0,
                resumed=True,
                wave=wave,
            )
            self._count(report)
            return report

        cp.reached(PHASE_QUIESCE)
        blob = self.pool.call(source, "export_shard", shard)
        payload = HandoffPayload.decode(blob)
        if payload.shard != shard:
            raise MigrationError(
                f"worker {source} exported shard {payload.shard}, "
                f"asked for {shard}"
            )
        cp.reached(PHASE_EXPORT)

        adopted_tick, adopted_busy = self.pool.call(
            destination, "adopt_shard", shard, blob
        )
        if (adopted_tick, tuple(adopted_busy)) != (
            payload.next_tick,
            payload.busy,
        ):
            raise MigrationError(
                f"shard {shard} replica on worker {destination} replayed "
                f"to (tick={adopted_tick}, busy={tuple(adopted_busy)}), "
                f"source exported (tick={payload.next_tick}, "
                f"busy={payload.busy}) — placement NOT flipped"
            )
        cp.reached(PHASE_ADOPT)

        self.pool.set_owner(shard, destination)
        cp.reached(PHASE_FLIP)

        self.pool.call(source, "release_shard", shard)
        cp.reached(PHASE_RELEASE)

        report = MigrationReport(
            shard=shard,
            source=source,
            destination=destination,
            payload_bytes=len(blob),
            journal_records=len(payload.records()),
            next_tick=payload.next_tick,
            pause_seconds=time.perf_counter() - t0,
            wave=wave,
        )
        self._count(report)
        return report

    # -- many moves ----------------------------------------------------------

    def execute(
        self,
        moves: Iterable[ShardMove],
        *,
        crashpoints: CrashPoints | None = None,
    ) -> list[MigrationReport]:
        """Plan ``moves`` into waves and run them wave by wave.

        Moves inside one wave touch disjoint workers, so their order is
        immaterial; the engine runs them in planner order for
        determinism.  A crash point or verification failure propagates
        with earlier moves already durable — re-invoking with the same
        moves resumes (completed moves collapse to the resumed-cleanup
        path because their placement already names the destination).
        """
        reports: list[MigrationReport] = []
        for i, wave in enumerate(plan_waves(moves)):
            if self._c_waves is not None:
                self._c_waves.inc()
            for m in wave:
                reports.append(
                    self.migrate(
                        m.shard,
                        m.destination,
                        crashpoints=crashpoints,
                        wave=i,
                    )
                )
        return reports

    def moves_to(self, target: dict[int, int]) -> list[ShardMove]:
        """The move list that turns the live placement into ``target``."""
        current = self.pool.placement
        return [
            ShardMove(shard=o, source=current[o], destination=w)
            for o, w in sorted(target.items())
            if current.get(o) is not None and current[o] != w
        ]

    def _count(self, report: MigrationReport) -> None:
        if self._c_migrations is None:
            return
        self._c_migrations.inc()
        if report.resumed:
            self._c_resumed.inc()
        self._c_bytes.inc(report.payload_bytes)
        self._h_pause.observe(report.pause_seconds)
