"""Bounded per-shard request queues with explicit overflow policies.

Every shard owns one :class:`BoundedQueue`.  Admission happens at enqueue
time — a full queue must do *something*, and the three classic answers are
all offered because they trade differently under the paper's traffic:

* ``REJECT`` — fail fast with an error the caller sees immediately
  (backpressure propagates to the client; best for interactive load).
* ``DROP_TAIL`` — silently drop the newcomer (classic router behaviour;
  oldest requests keep their place, favouring FIFO latency).
* ``DROP_OLDEST`` — evict the head to admit the newcomer (freshest-first;
  best when stale requests are worthless, e.g. single-slot optical packets
  that missed their slot anyway).
* ``SHED`` — per-tenant, class-aware admission control: on overflow, shed
  the *least deserving* request in the queue (or refuse the newcomer if it
  is itself least deserving) instead of blindly taking FIFO position as
  the casualty.  "Least deserving" is deterministic: lowest priority class
  first, then the tenant furthest over its weighted fair share of the
  queue, then the youngest request within that tenant.  Requires a
  :class:`TenantAdmission` contract.

The queue is a plain single-threaded structure: the asyncio server is the
only writer/reader, so no locking is needed — the event loop serializes
access.  Telemetry is attached by the owner, not baked in here.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Deque, Generic, Iterator, Mapping, TypeVar

from repro.errors import InvalidParameterError
from repro.util.validation import check_nonnegative_int, check_positive_int

__all__ = [
    "OverflowPolicy",
    "Offer",
    "TenantAdmission",
    "AdmissionDecision",
    "BoundedQueue",
]

T = TypeVar("T")


class OverflowPolicy(enum.Enum):
    """What a full queue does with the next arrival."""

    REJECT = "reject"
    DROP_TAIL = "drop_tail"
    DROP_OLDEST = "drop_oldest"
    SHED = "shed"


@dataclass(frozen=True)
class TenantAdmission:
    """Per-tenant admission contract for :data:`OverflowPolicy.SHED`.

    ``weights`` maps tenant id → fair-share weight; unknown tenants get
    ``default_weight``.  A tenant's fair share of a full queue is
    proportional to its weight, and the shed victim is drawn from the
    tenant most *over* that share (see :meth:`BoundedQueue.plan_admit`).
    """

    weights: Mapping[int, int] = field(default_factory=dict)
    default_weight: int = 1

    def __post_init__(self) -> None:
        check_positive_int(self.default_weight, "default_weight")
        for tenant, w in self.weights.items():
            check_nonnegative_int(tenant, f"weights[{tenant}] tenant id")
            check_positive_int(w, f"weights[{tenant}]")

    def weight(self, tenant: int) -> int:
        return self.weights.get(tenant, self.default_weight)


class AdmissionDecision:
    """Outcome prediction of one ``SHED`` enqueue attempt.

    ``accepted`` — the newcomer will enter the queue.
    ``evict_index`` — index (into the queue's current FIFO order) of the
    victim that must be shed to make room, or ``None`` when no eviction
    is needed (queue not full) or the newcomer itself is refused.

    The split mirrors :meth:`BoundedQueue.plan_offer`: the write-ahead
    journal needs the queue effect *before* it is applied, and an eviction
    at an arbitrary index is its own record type
    (:data:`repro.service.journal.RecordType.EVICT`).
    """

    __slots__ = ("accepted", "evict_index")

    def __init__(self, accepted: bool, evict_index: int | None = None) -> None:
        self.accepted = accepted
        self.evict_index = evict_index

    def __repr__(self) -> str:
        return (
            f"AdmissionDecision(accepted={self.accepted}, "
            f"evict_index={self.evict_index})"
        )


def _default_classify(item: object) -> tuple[int, int]:
    """``(tenant, priority_class)`` of a queue item.

    Understands the server's ``PendingRequest`` (via its ``.request``) and
    bare request-like objects; anything else is the default tenant/class.
    """
    request = getattr(item, "request", item)
    return (
        int(getattr(request, "tenant", 0)),
        int(getattr(request, "priority", 0)),
    )


class Offer(Generic[T]):
    """Outcome of one enqueue attempt.

    ``accepted`` — the new item entered the queue.
    ``evicted`` — the item pushed out to make room (``DROP_OLDEST`` only);
    the caller must resolve it (e.g. fail its future) so nothing is lost
    silently.
    """

    __slots__ = ("accepted", "evicted")

    def __init__(self, accepted: bool, evicted: T | None = None) -> None:
        self.accepted = accepted
        self.evicted = evicted

    def __repr__(self) -> str:
        return f"Offer(accepted={self.accepted}, evicted={self.evicted!r})"


class BoundedQueue(Generic[T]):
    """FIFO queue with a capacity and an :class:`OverflowPolicy`.

    ``capacity=None`` means unbounded (the equivalence tests and the
    simulator-parity mode use this: no admission losses).  ``capacity=0``
    is a legal degenerate queue that admits nothing — useful for fencing a
    shard off entirely; under ``DROP_OLDEST`` there is no head to evict, so
    the newcomer is refused instead.
    """

    def __init__(
        self,
        capacity: int | None = None,
        policy: OverflowPolicy = OverflowPolicy.REJECT,
        admission: TenantAdmission | None = None,
        classify: Callable[[T], tuple[int, int]] = _default_classify,
    ) -> None:
        if capacity is not None:
            check_nonnegative_int(capacity, "capacity")
        if not isinstance(policy, OverflowPolicy):
            raise InvalidParameterError(
                f"policy must be an OverflowPolicy, got {policy!r}"
            )
        if policy is OverflowPolicy.SHED and admission is None:
            admission = TenantAdmission()
        self.capacity = capacity
        self.policy = policy
        self.admission = admission
        self.classify = classify
        self._items: Deque[T] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    @property
    def depth(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def plan_offer(self) -> tuple[bool, bool]:
        """Predict :meth:`offer`'s effect without mutating: returns
        ``(will_accept, will_evict_head)``.  The write-ahead journal needs
        the queue effect *before* it is applied, and this keeps the
        prediction logic next to :meth:`offer` instead of duplicated in
        the server."""
        if self.policy is OverflowPolicy.SHED:
            raise InvalidParameterError(
                "SHED admission depends on the arriving item; use plan_admit"
            )
        if not self.full:
            return True, False
        if self.policy is OverflowPolicy.DROP_OLDEST and self._items:
            return True, True
        return False, False

    def plan_admit(self, item: T) -> AdmissionDecision:
        """Predict a ``SHED`` enqueue without mutating (``plan_offer`` for
        the admission-control policy, which must see the newcomer).

        Victim selection, fully deterministic:

        1. lowest priority class in the running (largest ``priority``
           number — 0 is the highest class), then
        2. within that class, the tenant most over its weighted fair
           share, measured as ``occupancy / weight`` (exact
           :class:`~fractions.Fraction` arithmetic — no float ties), then
        3. within that tenant, the youngest request (the newcomer counts
           as youngest of all).

        If the victim is the newcomer itself, it is refused and the queue
        untouched; otherwise the victim's current FIFO index is returned
        for the caller to journal (``EVICT``) before applying.
        """
        if self.policy is not OverflowPolicy.SHED:
            raise InvalidParameterError(
                f"plan_admit needs OverflowPolicy.SHED, queue has {self.policy}"
            )
        if not self.full:
            return AdmissionDecision(True)
        assert self.admission is not None
        classes: list[tuple[int, int]] = [
            self.classify(queued) for queued in self._items
        ]
        classes.append(self.classify(item))  # newcomer = youngest index
        occupancy: dict[int, int] = {}
        for tenant, _cls in classes:
            occupancy[tenant] = occupancy.get(tenant, 0) + 1
        victim = max(
            range(len(classes)),
            key=lambda i: (
                classes[i][1],
                Fraction(
                    occupancy[classes[i][0]],
                    self.admission.weight(classes[i][0]),
                ),
                i,
            ),
        )
        if victim == len(classes) - 1:
            return AdmissionDecision(False)
        return AdmissionDecision(True, victim)

    def offer(self, item: T) -> Offer[T]:
        """Try to enqueue ``item``; the policy decides on overflow."""
        if self.policy is OverflowPolicy.SHED:
            decision = self.plan_admit(item)
            if not decision.accepted:
                return Offer(False)
            evicted: T | None = None
            if decision.evict_index is not None:
                evicted = self._items[decision.evict_index]
                del self._items[decision.evict_index]
            self._items.append(item)
            return Offer(True, evicted)
        if not self.full:
            self._items.append(item)
            return Offer(True)
        if self.policy is OverflowPolicy.DROP_OLDEST and self._items:
            evicted = self._items.popleft()
            self._items.append(item)
            return Offer(True, evicted)
        # REJECT and DROP_TAIL both refuse the newcomer; the caller maps
        # the refusal to an error (REJECT) or a silent-drop count (DROP_TAIL).
        return Offer(False)

    def drain(self, limit: int | None = None) -> list[T]:
        """Dequeue up to ``limit`` items (all, when ``None``) in FIFO order."""
        if limit is None or limit >= len(self._items):
            items = list(self._items)
            self._items.clear()
            return items
        if limit < 0:
            raise InvalidParameterError(f"drain limit must be >= 0, got {limit}")
        return [self._items.popleft() for _ in range(limit)]
