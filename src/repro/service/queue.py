"""Bounded per-shard request queues with explicit overflow policies.

Every shard owns one :class:`BoundedQueue`.  Admission happens at enqueue
time — a full queue must do *something*, and the three classic answers are
all offered because they trade differently under the paper's traffic:

* ``REJECT`` — fail fast with an error the caller sees immediately
  (backpressure propagates to the client; best for interactive load).
* ``DROP_TAIL`` — silently drop the newcomer (classic router behaviour;
  oldest requests keep their place, favouring FIFO latency).
* ``DROP_OLDEST`` — evict the head to admit the newcomer (freshest-first;
  best when stale requests are worthless, e.g. single-slot optical packets
  that missed their slot anyway).

The queue is a plain single-threaded structure: the asyncio server is the
only writer/reader, so no locking is needed — the event loop serializes
access.  Telemetry is attached by the owner, not baked in here.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Generic, Iterator, TypeVar

from repro.errors import InvalidParameterError
from repro.util.validation import check_nonnegative_int

__all__ = ["OverflowPolicy", "Offer", "BoundedQueue"]

T = TypeVar("T")


class OverflowPolicy(enum.Enum):
    """What a full queue does with the next arrival."""

    REJECT = "reject"
    DROP_TAIL = "drop_tail"
    DROP_OLDEST = "drop_oldest"


class Offer(Generic[T]):
    """Outcome of one enqueue attempt.

    ``accepted`` — the new item entered the queue.
    ``evicted`` — the item pushed out to make room (``DROP_OLDEST`` only);
    the caller must resolve it (e.g. fail its future) so nothing is lost
    silently.
    """

    __slots__ = ("accepted", "evicted")

    def __init__(self, accepted: bool, evicted: T | None = None) -> None:
        self.accepted = accepted
        self.evicted = evicted

    def __repr__(self) -> str:
        return f"Offer(accepted={self.accepted}, evicted={self.evicted!r})"


class BoundedQueue(Generic[T]):
    """FIFO queue with a capacity and an :class:`OverflowPolicy`.

    ``capacity=None`` means unbounded (the equivalence tests and the
    simulator-parity mode use this: no admission losses).  ``capacity=0``
    is a legal degenerate queue that admits nothing — useful for fencing a
    shard off entirely; under ``DROP_OLDEST`` there is no head to evict, so
    the newcomer is refused instead.
    """

    def __init__(
        self,
        capacity: int | None = None,
        policy: OverflowPolicy = OverflowPolicy.REJECT,
    ) -> None:
        if capacity is not None:
            check_nonnegative_int(capacity, "capacity")
        if not isinstance(policy, OverflowPolicy):
            raise InvalidParameterError(
                f"policy must be an OverflowPolicy, got {policy!r}"
            )
        self.capacity = capacity
        self.policy = policy
        self._items: Deque[T] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[T]:
        return iter(self._items)

    @property
    def depth(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def plan_offer(self) -> tuple[bool, bool]:
        """Predict :meth:`offer`'s effect without mutating: returns
        ``(will_accept, will_evict_head)``.  The write-ahead journal needs
        the queue effect *before* it is applied, and this keeps the
        prediction logic next to :meth:`offer` instead of duplicated in
        the server."""
        if not self.full:
            return True, False
        if self.policy is OverflowPolicy.DROP_OLDEST and self._items:
            return True, True
        return False, False

    def offer(self, item: T) -> Offer[T]:
        """Try to enqueue ``item``; the policy decides on overflow."""
        if not self.full:
            self._items.append(item)
            return Offer(True)
        if self.policy is OverflowPolicy.DROP_OLDEST and self._items:
            evicted = self._items.popleft()
            self._items.append(item)
            return Offer(True, evicted)
        # REJECT and DROP_TAIL both refuse the newcomer; the caller maps
        # the refusal to an error (REJECT) or a silent-drop count (DROP_TAIL).
        return Offer(False)

    def drain(self, limit: int | None = None) -> list[T]:
        """Dequeue up to ``limit`` items (all, when ``None``) in FIFO order."""
        if limit is None or limit >= len(self._items):
            items = list(self._items)
            self._items.clear()
            return items
        if limit < 0:
            raise InvalidParameterError(f"drain limit must be >= 0, got {limit}")
        return [self._items.popleft() for _ in range(limit)]
