"""Per-shard write-ahead journal: append-only, CRC-checked, torn-tolerant.

The durability layer's ground truth.  Every state-changing event on a shard
— a request accepted into its queue, requests dequeued, a grant committed,
the slot clock advancing, a fault — is journaled *before* the effect is
applied, so a crash at any instant leaves a journal from which the exact
pre-crash state can be rebuilt (``docs/ROBUSTNESS.md``, "Durability &
recovery").

Wire format
-----------
One record is::

    +----------------+----------------+--------------------------------+
    | body length u32| CRC32(body) u32| body                           |
    +----------------+----------------+--------------------------------+
    body = type u8 | tick i64 | n_values u16 | values (n_values × i64)

all big-endian.  The ``length + CRC32`` envelope is the shared frame codec
:mod:`repro.util.framing` (also the wire protocol's envelope — one codec,
one test suite); the body layout is :data:`_BODY_HEAD`.  Decoding walks the
buffer record by record and **stops at the first short or CRC-failing
record**: a torn tail (power loss mid-write) costs at most the record being
written, never the prefix.  :func:`decode_records` reports the torn tail
explicitly so recovery telemetry can count it.

Record types and their replay semantics (see
:func:`repro.service.durability.replay_journal`):

==========  ==============================================  =============
type        values                                          replay effect
==========  ==============================================  =============
ACCEPT      (input, wavelength, output, duration,           queue.append
            priority, tenant)
DEQUEUE     (count,)                                        pop ``count``
GRANT       (input, wavelength, channel, duration) × n      busy[ch] = dur
ADVANCE     () or (count,)                                  busy decays 1
                                                            (or ``count``)
FAULT       (kind, a, b)                                    none (audit)
SNAPSHOT    (snapshot tick,)                                none (marker)
EVICT       (index,)                                        del queue[idx]
==========  ==============================================  =============

``ACCEPT`` records written before the tenant dimension existed carry five
values; replay and :func:`request_from_tuple` accept both widths (tenant
defaults to 0), so old journals recover on new code.  ``EVICT`` is the
admission-control shed: unlike ``DEQUEUE`` (which only pops the front),
it removes the victim at an arbitrary queue index chosen by the
per-tenant shed policy (:meth:`repro.service.queue.BoundedQueue.plan_admit`).

``GRANT`` records hold one *or more* grant 4-tuples back to back — the
server journals a whole tick's grants for a shard as one record
(:meth:`ShardJournal.grant_batch`), which keeps the write-ahead step off
the tick-latency budget (``bench_journal``'s <10% gate).

``ADVANCE`` likewise batches: a record with no values advances one tick
(the historical form), while ``values = (count,)`` advances ``count``
consecutive ticks starting at ``record.tick``.  The tick-window server
defers idle-tick advances (:meth:`ShardJournal.defer_advance`) and
coalesces a run into one record; any other append — or an explicit
:meth:`ShardJournal.flush_deferred` — flushes the run first, so batches
only ever span ticks where *nothing else happened* on the shard and the
write-ahead ordering is preserved record for record.

Backends are duck-typed byte sinks (:class:`MemoryJournal`,
:class:`FileJournal`); :class:`repro.faults.TornWriter` wraps one to sever
an append mid-record for the torn-write tests.
"""

from __future__ import annotations

import os
import struct
import zlib
from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import IntEnum
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.errors import InvalidParameterError
from repro.util.framing import FRAME_HEADER, decode_frames

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.distributed import SlotRequest
    from repro.service.telemetry import Telemetry

__all__ = [
    "RecordType",
    "JournalRecord",
    "encode_record",
    "decode_records",
    "JournalBackend",
    "MemoryJournal",
    "FileJournal",
    "ShardJournal",
    "FAULT_CRASH",
    "FAULT_OUTAGE",
    "FAULT_DEGRADATION",
    "request_tuple",
    "request_from_tuple",
]


class RecordType(IntEnum):
    """Journal record discriminator (the ``type`` byte on the wire)."""

    ACCEPT = 1
    DEQUEUE = 2
    GRANT = 3
    ADVANCE = 4
    FAULT = 5
    SNAPSHOT = 6
    EVICT = 7


#: ``FAULT`` record kinds (first value).
FAULT_CRASH = 0
FAULT_OUTAGE = 1
FAULT_DEGRADATION = 2

#: The record envelope is the shared frame codec (repro.util.framing).
_HEADER = FRAME_HEADER
_BODY_HEAD = struct.Struct("!BqH")  # record type, tick, n_values
_MAX_VALUES = 0xFFFF

#: Whole-body structs keyed by value count: one ``pack`` per record on the
#: hot path instead of two packs plus a concat.
_BODY_STRUCTS: dict[int, struct.Struct] = {}


def _body_struct(n_values: int) -> struct.Struct:
    s = _BODY_STRUCTS.get(n_values)
    if s is None:
        s = _BODY_STRUCTS[n_values] = struct.Struct(f"!BqH{n_values}q")
    return s


@dataclass(frozen=True, slots=True)
class JournalRecord:
    """One decoded journal record: ``(type, tick, values)``."""

    type: RecordType
    tick: int
    values: tuple[int, ...] = ()


def encode_record(record: JournalRecord) -> bytes:
    """Serialize one record (length + CRC header, then the body)."""
    values = record.values
    n = len(values)
    if n > _MAX_VALUES:
        raise InvalidParameterError(
            f"journal record has {n} values, max {_MAX_VALUES}"
        )
    body = _body_struct(n).pack(int(record.type), record.tick, n, *values)
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


def _decode_body(body: bytes) -> JournalRecord:
    rtype, tick, n_values = _BODY_HEAD.unpack_from(body)
    if len(body) != _BODY_HEAD.size + 8 * n_values:
        raise ValueError("journal body length disagrees with its value count")
    values = (
        struct.unpack_from(f"!{n_values}q", body, _BODY_HEAD.size)
        if n_values
        else ()
    )
    return JournalRecord(RecordType(rtype), tick, tuple(values))


def decode_records(buf: bytes) -> tuple[list[JournalRecord], int, bool]:
    """Decode every valid record from ``buf``'s start.

    Returns ``(records, consumed_bytes, torn)``: ``torn`` is True when
    trailing bytes remain that do not form a complete, CRC-valid record —
    the signature of a write severed by a crash.  Decoding never raises on
    bad input; a corrupt record simply ends the valid prefix.

    The frame walk is the shared tolerant decoder
    (:func:`repro.util.framing.decode_frames`); this function adds only the
    journal-body decode, treating an undecodable body exactly like a torn
    frame (the walk stops, the prefix survives).
    """
    bodies, consumed, torn = decode_frames(buf, min_payload=_BODY_HEAD.size)
    records: list[JournalRecord] = []
    off = 0
    for body in bodies:
        try:
            records.append(_decode_body(body))
        except (struct.error, ValueError):
            return records, off, True
        off += _HEADER.size + len(body)
    return records, consumed, torn


def _entry_key(record: JournalRecord) -> int:
    """The compaction key of a record: the *last* tick its effect covers.

    For a batched ``ADVANCE`` (``values = (count,)``) that is the end tick
    ``tick + count - 1``; for everything else it is ``record.tick``.  Keying
    the in-memory mirror on the end tick means :meth:`ShardJournal.compact`
    can never drop a batch whose run spans the snapshot cutoff — replay
    handles the partially-covered record instead
    (:func:`repro.service.durability.replay_journal`).
    """
    if record.type is RecordType.ADVANCE and record.values:
        return record.tick + record.values[0] - 1
    return record.tick


def request_tuple(request: "SlotRequest") -> tuple[int, int, int, int, int, int]:
    """The journal/snapshot encoding of a request (6 small ints)."""
    return (
        request.input_fiber,
        request.wavelength,
        request.output_fiber,
        request.duration,
        request.priority,
        request.tenant,
    )


def request_from_tuple(values: Sequence[int]) -> "SlotRequest":
    """Inverse of :func:`request_tuple`.

    Accepts both the current 6-value form and the pre-tenant 5-value form
    (journals and snapshots written by older builds), mapping the latter
    to tenant 0.
    """
    from repro.core.distributed import SlotRequest

    if len(values) == 5:
        i, w, o, duration, priority = values
        tenant = 0
    else:
        i, w, o, duration, priority, tenant = values
    return SlotRequest(
        int(i), int(w), int(o), int(duration), int(priority), int(tenant)
    )


# -- backends ----------------------------------------------------------------


class JournalBackend(ABC):
    """A durable append-only byte sink.

    ``append`` buffers, ``flush`` makes the bytes durable (for the file
    backend: OS write, plus ``fsync`` when configured), ``load`` reads back
    exactly the durable bytes, ``rewrite`` atomically replaces the whole
    journal (compaction).  :class:`repro.faults.TornWriter` duck-types this
    interface to sever appends mid-record.
    """

    @abstractmethod
    def append(self, data: bytes) -> None: ...

    @abstractmethod
    def flush(self) -> None: ...

    @abstractmethod
    def load(self) -> bytes: ...

    @abstractmethod
    def rewrite(self, data: bytes) -> None: ...

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class MemoryJournal(JournalBackend):
    """In-memory backend: survives worker crashes (the server outlives its
    workers, like the queues do), not process death.  The default — and the
    backend the <10% tick-latency budget in ``bench_journal`` is for."""

    def __init__(self) -> None:
        self._buf = bytearray()
        self.flushes = 0

    def append(self, data: bytes) -> None:
        self._buf += data

    def flush(self) -> None:
        self.flushes += 1

    def load(self) -> bytes:
        return bytes(self._buf)

    def rewrite(self, data: bytes) -> None:
        self._buf = bytearray(data)

    def __len__(self) -> int:
        return len(self._buf)


class FileJournal(JournalBackend):
    """Append-only file backend (``fsync=True`` for power-loss durability).

    ``rewrite`` goes through a temp file + :func:`os.replace` so compaction
    is atomic: a crash leaves either the old or the new journal, never a
    mix.
    """

    def __init__(self, path: str | os.PathLike, fsync: bool = False) -> None:
        self.path = Path(path)
        self.fsync = bool(fsync)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "ab")

    def append(self, data: bytes) -> None:
        self._fh.write(data)

    def flush(self) -> None:
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    def load(self) -> bytes:
        self.flush()
        return self.path.read_bytes()

    def rewrite(self, data: bytes) -> None:
        self._fh.close()
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_bytes(data)
        os.replace(tmp, self.path)
        self._fh = open(self.path, "ab")

    def close(self) -> None:
        self._fh.close()


# -- the per-shard journal ---------------------------------------------------


class ShardJournal:
    """One shard's write-ahead journal over a :class:`JournalBackend`.

    Every append is encoded, handed to the backend, and flushed before the
    caller applies the corresponding effect — write-ahead in the literal
    order.  An in-memory mirror of ``(tick, encoded bytes)`` pairs serves
    compaction without re-encoding; :meth:`reload` re-decodes the
    *durable* bytes, which is what recovery uses (so torn tails are
    observed exactly as a restarted process would see them).

    The per-type appenders pack their record in a single precompiled
    ``struct`` call and batch the telemetry counters (flushed once per
    tick from :meth:`advance`, and on :meth:`close`): this class sits on
    the service's tick path and is what the <10% ``bench_journal``
    latency budget is spent on.

    Opening a journal over a backend with existing bytes (a restarted
    process reopening its ``.wal`` file) adopts the decodable prefix.
    """

    def __init__(
        self,
        backend: JournalBackend,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self._backend = backend
        self._entries: list[tuple[int, bytes]] = []
        existing = backend.load()
        if existing:
            adopted, _, _ = decode_records(existing)
            self._entries = [(_entry_key(r), encode_record(r)) for r in adopted]
        self._pending_records = 0
        self._pending_bytes = 0
        # Deferred-ADVANCE run: [start, start + count) not yet journaled.
        self._deferred_start = 0
        self._deferred_count = 0
        if telemetry is not None:
            self._c_records = telemetry.counter("durability.journal.records")
            self._c_bytes = telemetry.counter("durability.journal.bytes")
        else:
            self._c_records = None
            self._c_bytes = None

    @property
    def backend(self) -> JournalBackend:
        return self._backend

    def _append_bytes(self, tick: int, data: bytes) -> None:
        """The WAL step: durable first, mirror and accounting after."""
        self._backend.append(data)
        self._backend.flush()
        self._entries.append((tick, data))
        self._pending_records += 1
        self._pending_bytes += len(data)

    def _flush_counters(self) -> None:
        if self._c_records is not None and self._pending_records:
            self._c_records.inc(self._pending_records)
            self._c_bytes.inc(self._pending_bytes)
            self._pending_records = 0
            self._pending_bytes = 0

    def append(self, record: JournalRecord) -> None:
        """Encode, append, and flush ``record`` (the WAL step)."""
        if self._deferred_count:
            self.flush_deferred()
        self._append_bytes(_entry_key(record), encode_record(record))

    # Convenience appenders, one per record type.

    def accept(self, tick: int, request: "SlotRequest") -> None:
        if self._deferred_count:
            self.flush_deferred()
        body = _body_struct(6).pack(
            _T_ACCEPT,
            tick,
            6,
            request.input_fiber,
            request.wavelength,
            request.output_fiber,
            request.duration,
            request.priority,
            request.tenant,
        )
        self._append_bytes(
            tick, _HEADER.pack(len(body), zlib.crc32(body)) + body
        )

    def dequeue(self, tick: int, count: int) -> None:
        if self._deferred_count:
            self.flush_deferred()
        body = _body_struct(1).pack(_T_DEQUEUE, tick, 1, count)
        self._append_bytes(
            tick, _HEADER.pack(len(body), zlib.crc32(body)) + body
        )

    def evict(self, tick: int, index: int) -> None:
        """Journal an admission-control shed of ``queue[index]`` (the
        write-ahead step of :data:`RecordType.EVICT`)."""
        if self._deferred_count:
            self.flush_deferred()
        body = _body_struct(1).pack(_T_EVICT, tick, 1, index)
        self._append_bytes(
            tick, _HEADER.pack(len(body), zlib.crc32(body)) + body
        )

    def grant(
        self, tick: int, input_fiber: int, wavelength: int, channel: int,
        duration: int,
    ) -> None:
        self.grant_batch(tick, ((input_fiber, wavelength, channel, duration),))

    def grant_batch(
        self,
        tick: int,
        grants: Iterable[tuple[int, int, int, int]],
    ) -> None:
        """Journal a whole tick's grants for this shard as one ``GRANT``
        record of back-to-back ``(input, wavelength, channel, duration)``
        4-tuples."""
        if self._deferred_count:
            self.flush_deferred()
        values: list[int] = []
        for g in grants:
            values.extend(g)
        n = len(values)
        body = _body_struct(n).pack(_T_GRANT, tick, n, *values)
        self._append_bytes(
            tick, _HEADER.pack(len(body), zlib.crc32(body)) + body
        )

    def advance(self, tick: int) -> None:
        if self._deferred_count:
            self.flush_deferred()
        body = _body_struct(0).pack(_T_ADVANCE, tick, 0)
        self._append_bytes(
            tick, _HEADER.pack(len(body), zlib.crc32(body)) + body
        )
        self._flush_counters()

    def defer_advance(self, tick: int) -> None:
        """Buffer tick ``tick``'s ADVANCE for coalescing.

        Consecutive deferred ticks accumulate into one run; the run is
        journaled as a single batched ``ADVANCE`` record by
        :meth:`flush_deferred` — which every *other* appender calls first,
        so a run only ever spans ticks where nothing else happened on this
        shard and the journal's record order still equals the event order.
        A non-consecutive tick flushes the old run and starts a new one.

        Callers (the tick-window server loop) must ensure a deferred tick's
        effect is applied exactly like :meth:`advance`'s; the write-ahead
        guarantee weakens only for *idle* ticks: a crash between deferral
        and flush loses at most the pure clock advances of the open window,
        which recovery re-derives from the resume tick.
        """
        if (
            self._deferred_count
            and tick == self._deferred_start + self._deferred_count
        ):
            self._deferred_count += 1
            return
        if self._deferred_count:
            self.flush_deferred()
        self._deferred_start = tick
        self._deferred_count = 1

    def flush_deferred(self) -> None:
        """Journal the pending deferred-ADVANCE run (no-op when empty).

        A run of one is written in the historical no-values form; a longer
        run becomes one ``ADVANCE`` record with ``values = (count,)`` at
        the run's start tick, mirrored under its *end* tick
        (:func:`_entry_key`) so compaction keeps spanning batches.
        """
        count = self._deferred_count
        if not count:
            return
        self._deferred_count = 0
        start = self._deferred_start
        if count == 1:
            body = _body_struct(0).pack(_T_ADVANCE, start, 0)
        else:
            body = _body_struct(1).pack(_T_ADVANCE, start, 1, count)
        self._append_bytes(
            start + count - 1, _HEADER.pack(len(body), zlib.crc32(body)) + body
        )
        self._flush_counters()

    def fault(self, tick: int, kind: int, a: int = 0, b: int = 0) -> None:
        self.append(JournalRecord(RecordType.FAULT, tick, (kind, a, b)))

    def snapshot_mark(self, tick: int) -> None:
        self.append(JournalRecord(RecordType.SNAPSHOT, tick, (tick,)))

    # Reads and maintenance.

    def records(self) -> tuple[JournalRecord, ...]:
        """The in-memory mirror, decoded (tests and introspection)."""
        if self._deferred_count:
            self.flush_deferred()
        decoded, _, _ = decode_records(
            b"".join(data for _tick, data in self._entries)
        )
        return tuple(decoded)

    def reload(self) -> tuple[list[JournalRecord], bool]:
        """Decode the durable bytes; returns ``(records, torn_tail)``.

        This — not the mirror — is what recovery replays: it proves the
        state was actually journaled, and it observes torn tails.
        """
        if self._deferred_count:
            self.flush_deferred()
        self._flush_counters()
        records, _, torn = decode_records(self._backend.load())
        return records, torn

    def compact(self, before_tick: int) -> int:
        """Drop records with ``tick < before_tick`` (covered by a retained
        snapshot); atomically rewrites the backend.  Returns records kept.

        The mirror is keyed on each record's *last* covered tick
        (:func:`_entry_key`), so a batched ``ADVANCE`` whose run spans
        ``before_tick`` is retained and replay clips it."""
        if self._deferred_count:
            self.flush_deferred()
        kept = [e for e in self._entries if e[0] >= before_tick]
        if len(kept) != len(self._entries):
            self._backend.rewrite(b"".join(data for _tick, data in kept))
            self._entries = kept
        return len(kept)

    def rewrite_records(self, records: "Iterable[JournalRecord]") -> None:
        """Atomically replace the whole journal with ``records``.

        Recovery-time surgery: the multi-process shard workers use this to
        strip the write-ahead of an in-flight tick (trailing GRANTs with
        no ADVANCE) after a process kill, so replay and the parent's
        redelivered tick cannot double-apply them."""
        if self._deferred_count:
            self.flush_deferred()
        entries = [(_entry_key(r), encode_record(r)) for r in records]
        self._backend.rewrite(b"".join(data for _tick, data in entries))
        self._entries = entries

    def close(self) -> None:
        if self._deferred_count:
            self.flush_deferred()
        self._flush_counters()
        self._backend.close()


#: Plain-int record types for the hot appenders (skips IntEnum coercion).
_T_ACCEPT = int(RecordType.ACCEPT)
_T_DEQUEUE = int(RecordType.DEQUEUE)
_T_GRANT = int(RecordType.GRANT)
_T_ADVANCE = int(RecordType.ADVANCE)
_T_EVICT = int(RecordType.EVICT)
