"""Shard workers: one per output fiber, owning scheduler and channel state.

The paper's structural result — requests partition by destination fiber and
the per-output decisions are independent — makes the output fiber the
natural service shard.  Each :class:`ShardWorker` owns

* its per-output scheduler instance (``first_available`` /
  ``break_first_available`` / any :class:`~repro.core.base.Scheduler`),
* its bounded request queue (see :mod:`repro.service.queue`),
* its channel-availability state across slot ticks: ``busy[b]`` counts the
  remaining slots output channel ``b`` is held by a granted multi-slot
  connection (paper Section V non-disturb mode — exactly the
  :class:`~repro.sim.engine.SlottedSimulator` bookkeeping, per shard).

Scheduling a tick is a *read* of shard state (so it may run on an executor
thread); committing grants and advancing the clock are loop-thread writes.
The scheduling decision itself goes through
:func:`repro.core.distributed.schedule_output_fiber` — the same code path
as the batch simulator, which is what makes service-vs-simulator grant
equivalence testable instead of aspirational.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core.base import Scheduler
from repro.core.distributed import (
    GrantedRequest,
    SlotRequest,
    schedule_output_fiber,
)
from repro.core.policies import GrantPolicy
from repro.errors import ShardDownError, SimulationError
from repro.graphs.conversion import ConversionScheme
from repro.types import ScheduleResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.queue import BoundedQueue
    from repro.service.telemetry import Telemetry

__all__ = ["ShardWorker"]


class ShardWorker:
    """Per-output-fiber worker: scheduler + queue + channel occupancy."""

    def __init__(
        self,
        output_fiber: int,
        scheme: ConversionScheme,
        scheduler: Scheduler,
        policy: GrantPolicy,
        queue: "BoundedQueue",
        telemetry: "Telemetry",
    ) -> None:
        self.output_fiber = output_fiber
        self.scheme = scheme
        self.scheduler = scheduler
        self.policy = policy
        self.queue = queue
        self._busy = [0] * scheme.k
        #: Dark output channels this tick (fault injection); None = none.
        self._dark: list[bool] | None = None
        #: A down shard refuses every operation with ShardDownError until
        #: the supervisor restores it (see repro.service.supervisor).
        self.down = False
        self._crash_cause: BaseException | None = None
        prefix = f"shard.{output_fiber}"
        self.offered = telemetry.counter(f"{prefix}.offered")
        self._granted = telemetry.counter(f"{prefix}.granted")
        self._rejected = telemetry.counter(f"{prefix}.rejected")
        self._depth_gauge = telemetry.gauge(f"{prefix}.queue_depth")
        self._occupancy_gauge = telemetry.gauge(f"{prefix}.occupancy")

    # -- state views --------------------------------------------------------

    @property
    def k(self) -> int:
        return self.scheme.k

    @property
    def occupancy(self) -> int:
        """Output channels currently held by ongoing connections."""
        return sum(1 for b in self._busy if b > 0)

    def busy_snapshot(self) -> list[int]:
        """Copy of ``busy[]`` for the supervisor's checkpoints."""
        return list(self._busy)

    def availability(self) -> list[bool]:
        """Free-channel mask for the current slot tick.

        Dark channels (injected outages) read as unavailable, exactly like
        Section-V occupied channels, so the scheduler routes around them;
        connections already holding a channel that goes dark complete
        normally.
        """
        if self._dark is None:
            return [b == 0 for b in self._busy]
        return [
            b == 0 and not dark for b, dark in zip(self._busy, self._dark)
        ]

    def set_dark(self, dark: Sequence[bool] | None) -> None:
        """Install this tick's dark-channel row (None = fully lit)."""
        self._dark = None if dark is None else list(dark)

    # -- crash / restore (see repro.service.supervisor) ----------------------

    def crash(self, cause: BaseException | None = None) -> None:
        """Kill the worker: its in-memory channel state is lost.

        ``busy[]`` is wiped — that is the whole point of the supervisor's
        checkpoints — and every later operation raises
        :class:`~repro.errors.ShardDownError` until :meth:`restore`.
        """
        self.down = True
        self._busy = [0] * self.k
        self._crash_cause = cause

    def restore(self, busy: Sequence[int]) -> None:
        """Bring the worker back with the supervisor's aged ``busy[]``."""
        if len(busy) != self.k:
            raise SimulationError(
                f"shard {self.output_fiber}: restore vector has length "
                f"{len(busy)}, expected k={self.k}"
            )
        self._busy = [int(b) for b in busy]
        self.down = False
        self._crash_cause = None
        self._occupancy_gauge.set(self.occupancy)

    def _check_up(self) -> None:
        if self.down:
            raise ShardDownError(
                f"shard {self.output_fiber} is down"
            ) from self._crash_cause

    def request_vector(
        self, requests: Sequence[SlotRequest]
    ) -> list[int]:
        """Wavelength-count vector of ``requests`` (vectorized batch path)."""
        vec = [0] * self.k
        for r in requests:
            vec[r.wavelength] += 1
        return vec

    # -- one slot tick ------------------------------------------------------

    def schedule(
        self,
        requests: Sequence[SlotRequest],
        degradations: "dict[int, tuple[int, int]] | None" = None,
    ) -> tuple[ScheduleResult | None, list[GrantedRequest], list[SlotRequest]]:
        """Resolve this tick's contention; does NOT commit (pure read).

        Fails fast with a typed :class:`~repro.errors.ShardDownError` when
        the worker is down, and wraps any defect raised by the underlying
        scheduler in the same type (``raise ... from`` keeps the original
        on the chain), marking the worker down — a broken scheduler is a
        crashed shard, not a silent wrong answer.
        """
        self._check_up()
        if not requests:
            return None, [], []
        try:
            result, granted, rejected = schedule_output_fiber(
                self.scheme,
                self.scheduler,
                self.policy,
                self.output_fiber,
                requests,
                self.availability(),
                degradations,
            )
        except ShardDownError:
            raise
        except Exception as exc:
            self.crash(exc)
            raise ShardDownError(
                f"shard {self.output_fiber} crashed while scheduling: {exc}"
            ) from exc
        return result, granted, rejected

    def commit(self, granted: Sequence[GrantedRequest]) -> None:
        """Hold each granted channel for the connection's duration."""
        self._check_up()
        for g in granted:
            if self._busy[g.channel] > 0:
                raise SimulationError(
                    f"shard {self.output_fiber}: channel {g.channel} granted "
                    "while occupied"
                )
            if self._dark is not None and self._dark[g.channel]:
                raise SimulationError(
                    f"shard {self.output_fiber}: channel {g.channel} granted "
                    "while dark"
                )
            self._busy[g.channel] = g.request.duration
        self._granted.inc(len(granted))
        self._occupancy_gauge.set(self.occupancy)

    def record_rejected(self, n: int) -> None:
        self._rejected.inc(n)

    def advance(self) -> None:
        """End of slot tick: ongoing connections age by one slot."""
        self._busy = [b - 1 if b > 0 else 0 for b in self._busy]
        self._occupancy_gauge.set(self.occupancy)
        self._depth_gauge.set(self.queue.depth)

    def update_depth_gauge(self) -> None:
        self._depth_gauge.set(self.queue.depth)
