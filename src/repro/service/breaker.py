"""Per-shard circuit breakers for the scheduling service.

A crashed or repeatedly timing-out shard should not keep absorbing requests
that are doomed to fail — the breaker converts a failing shard's latency
into an immediate, cheap refusal (``CIRCUIT_OPEN``) that retrying clients
can back off from.  The classic three-state machine, driven by the server's
deterministic slot-tick clock (no wall-clock reads, so chaos runs are
exactly reproducible):

* ``CLOSED`` — healthy.  Every failure increments a consecutive-failure
  count; ``failure_threshold`` of them in a row opens the breaker.  Any
  success resets the count.
* ``OPEN`` — submissions are short-circuited without touching the shard.
  After ``reset_ticks`` slot ticks the next submission is admitted as a
  probe (the breaker moves to ``HALF_OPEN``).
* ``HALF_OPEN`` — up to ``probe_limit`` requests pass through.
  ``probe_successes`` granted/settled probes close the breaker; a single
  failed probe reopens it and restarts the timer.

State transitions are counted on the shared telemetry
(``breaker.transitions.{opened,half_open,closed}``) and the current state
is exported per shard (``shard.N.breaker_state``: 0 = closed,
1 = half-open, 2 = open), so a dashboard shows flapping at a glance.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.util.validation import check_nonnegative_int, check_positive_int

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.telemetry import Telemetry

__all__ = ["BreakerState", "BreakerConfig", "CircuitBreaker"]


class BreakerState(enum.Enum):
    """The three classic circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


#: Gauge encoding of the state (stable across releases; dashboards rely on it).
_STATE_GAUGE = {
    BreakerState.CLOSED: 0,
    BreakerState.HALF_OPEN: 1,
    BreakerState.OPEN: 2,
}


@dataclass(frozen=True)
class BreakerConfig:
    """Breaker tuning, in slot ticks (the service's deterministic clock).

    ``failure_threshold`` consecutive failures open the breaker;
    ``reset_ticks`` later the next submission probes (``HALF_OPEN``);
    ``probe_successes`` successful probes (of at most ``probe_limit``
    admitted concurrently) close it again.
    """

    failure_threshold: int = 3
    reset_ticks: int = 5
    probe_limit: int = 1
    probe_successes: int = 1

    def __post_init__(self) -> None:
        check_positive_int(self.failure_threshold, "failure_threshold")
        check_positive_int(self.reset_ticks, "reset_ticks")
        check_positive_int(self.probe_limit, "probe_limit")
        check_positive_int(self.probe_successes, "probe_successes")


class CircuitBreaker:
    """One breaker guarding one shard; driven entirely by tick time."""

    def __init__(
        self,
        config: BreakerConfig,
        telemetry: "Telemetry | None" = None,
        shard: int | None = None,
    ) -> None:
        self.config = config
        self.state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at_tick = 0
        self._probes_admitted = 0
        self._probe_successes = 0
        if telemetry is not None:
            self._opened = telemetry.counter("breaker.transitions.opened")
            self._half = telemetry.counter("breaker.transitions.half_open")
            self._closed = telemetry.counter("breaker.transitions.closed")
            self._state_gauge = (
                telemetry.gauge(f"shard.{shard}.breaker_state")
                if shard is not None
                else None
            )
        else:
            self._opened = self._half = self._closed = None
            self._state_gauge = None

    # -- state transitions ---------------------------------------------------

    def _enter(self, state: BreakerState, tick: int) -> None:
        self.state = state
        if state is BreakerState.OPEN:
            self._opened_at_tick = tick
            self._consecutive_failures = 0
            if self._opened is not None:
                self._opened.inc()
        elif state is BreakerState.HALF_OPEN:
            self._probes_admitted = 0
            self._probe_successes = 0
            if self._half is not None:
                self._half.inc()
        else:
            self._consecutive_failures = 0
            if self._closed is not None:
                self._closed.inc()
        if self._state_gauge is not None:
            self._state_gauge.set(_STATE_GAUGE[state])

    # -- protocol ------------------------------------------------------------

    def allow(self, tick: int) -> bool:
        """Whether a submission may proceed at ``tick``.

        Refusals are free of side effects: an open breaker's rejections do
        not count as failures (they never reached the shard).
        """
        check_nonnegative_int(tick, "tick")
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if tick - self._opened_at_tick < self.config.reset_ticks:
                return False
            self._enter(BreakerState.HALF_OPEN, tick)
        # HALF_OPEN: admit a bounded number of probes.
        if self._probes_admitted < self.config.probe_limit:
            self._probes_admitted += 1
            return True
        return False

    def record_success(self, tick: int) -> None:
        """A request that passed :meth:`allow` settled successfully."""
        if self.state is BreakerState.HALF_OPEN:
            self._probe_successes += 1
            if self._probe_successes >= self.config.probe_successes:
                self._enter(BreakerState.CLOSED, tick)
        elif self.state is BreakerState.CLOSED:
            self._consecutive_failures = 0

    def record_failure(self, tick: int) -> None:
        """A request that passed :meth:`allow` failed (timeout, crash, ...)."""
        if self.state is BreakerState.HALF_OPEN:
            self._enter(BreakerState.OPEN, tick)
        elif self.state is BreakerState.CLOSED:
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.config.failure_threshold:
                self._enter(BreakerState.OPEN, tick)
        # OPEN: stragglers from before the trip carry no new information.

    def force_open(self, tick: int) -> None:
        """Trip immediately (the supervisor does this on a shard crash)."""
        if self.state is not BreakerState.OPEN:
            self._enter(BreakerState.OPEN, tick)

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state.value}, "
            f"failures={self._consecutive_failures})"
        )
