"""The asyncio scheduling server: slot ticks, shard fan-out, timeouts.

:class:`SchedulingService` turns the paper's per-slot batch schedulers into
a long-running online service.  Callers submit
:class:`~repro.core.distributed.SlotRequest`\\ s at any time; the server
batches everything enqueued since the last tick into one *slot tick* —
the service-side analogue of the simulator's synchronous time slot — and
resolves each request's future with a :class:`ServiceGrant` or
:class:`Rejected`.

One tick does, in order (mirroring ``SlottedSimulator.step`` exactly, which
is what the equivalence test relies on):

1. **Drain** each shard's bounded queue (FIFO, optionally capped per tick).
2. **Admission**: expire requests past their deadline (``TIMED_OUT``) and
   requests whose input channel is still held by an earlier multi-slot
   grant or by an earlier request in this same tick (``SOURCE_BLOCKED`` —
   the input laser cannot transmit two signals).
3. **Fan-out**: run each shard's per-output scheduler on the survivors —
   inline on the event loop, on a thread pool (one task per shard), or via
   the NumPy vectorized batch kernels on a worker thread
   (:class:`ExecutionMode`).
4. **Commit**: hold granted output/input channels for the connection's
   duration, resolve futures, record telemetry (grant latency, tick
   duration, occupancy, queue depths).
5. **Advance** every shard's channel clock and the input-side busy state.

Drive ticks yourself (:meth:`SchedulingService.tick`,
:meth:`~SchedulingService.run_ticks` — deterministic, used by tests) or let
:meth:`~SchedulingService.start` run them on a wall-clock interval.
"""

from __future__ import annotations

import asyncio
import enum
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Awaitable, Callable, Sequence

import numpy as np

from repro.core.base import Scheduler
from repro.core.batch import batch_first_available
from repro.core.batch_bfa import batch_break_first_available
from repro.core.distributed import (
    GrantedRequest,
    SlotRequest,
    distribute_grants,
    validate_slot_request,
)
from repro.core.policies import FixedPriorityPolicy, GrantPolicy
from repro.errors import InvalidParameterError, SimulationError
from repro.graphs.conversion import (
    CircularConversion,
    ConversionScheme,
    NonCircularConversion,
)
from repro.service.queue import BoundedQueue, OverflowPolicy
from repro.service.shard import ShardWorker
from repro.service.telemetry import Telemetry, exponential_buckets
from repro.types import Grant
from repro.util.validation import check_positive_int

__all__ = [
    "ExecutionMode",
    "RejectReason",
    "ServiceGrant",
    "Rejected",
    "SchedulingService",
]


class ExecutionMode(enum.Enum):
    """How one tick's shard fan-out executes.

    ``INLINE`` — sequentially on the event loop, shards in ascending
    output-fiber order.  Deterministic for every policy; the mode the
    simulator-equivalence guarantee covers.

    ``THREADS`` — one executor task per shard.  Scheduling is a pure read
    of shard state, so this is safe; determinism additionally requires a
    stateless (or per-shard) grant policy because shards may interleave
    policy calls.

    ``VECTORIZED`` — all shards' request vectors stacked into one
    ``(M, k)`` NumPy batch solved by the
    :func:`~repro.core.batch.batch_first_available` /
    :func:`~repro.core.batch_bfa.batch_break_first_available` kernels on a
    worker thread (keeping the event loop responsive).  Requires a
    non-circular or circular (non-full-range) scheme and single-priority
    traffic.
    """

    INLINE = "inline"
    THREADS = "threads"
    VECTORIZED = "vectorized"


class RejectReason(enum.Enum):
    """Why a submitted request did not get a channel."""

    #: Lost the output contention this tick (no free compatible channel).
    CONTENTION = "contention"
    #: Input channel still busy with an earlier grant (or an earlier
    #: request in the same tick) — blocked at source.
    SOURCE_BLOCKED = "source_blocked"
    #: Bounded shard queue was full under the ``REJECT`` policy.
    QUEUE_FULL = "queue_full"
    #: Dropped by a ``DROP_TAIL``/``DROP_OLDEST`` queue overflow.
    DROPPED = "dropped"
    #: Deadline passed before a tick could schedule it.
    TIMED_OUT = "timed_out"
    #: Service stopped with the request still queued.
    SHUTDOWN = "shutdown"


@dataclass(frozen=True, slots=True)
class ServiceGrant:
    """A granted request: the assigned output channel and the grant slot."""

    request: SlotRequest
    channel: int
    slot: int


@dataclass(frozen=True, slots=True)
class Rejected:
    """A request that resolved without a channel, and why."""

    request: SlotRequest
    reason: RejectReason
    slot: int | None = None


class _Pending:
    """Internal envelope: request + future + deadline + submit timestamp."""

    __slots__ = ("request", "future", "deadline", "submitted_at")

    def __init__(
        self,
        request: SlotRequest,
        future: "asyncio.Future[ServiceGrant | Rejected]",
        deadline: float | None,
        submitted_at: float,
    ) -> None:
        self.request = request
        self.future = future
        self.deadline = deadline
        self.submitted_at = submitted_at


#: Tick-duration buckets: 10 µs … ~40 s.
_TICK_BUCKETS = exponential_buckets(10e-6, 2.0, 22)
#: Occupancy buckets: 1 … 2^19 busy channels.
_OCCUPANCY_BUCKETS = exponential_buckets(1.0, 2.0, 20)


class SchedulingService:
    """Sharded online scheduling service for an ``N × N`` interconnect.

    Parameters
    ----------
    n_fibers, scheme:
        Interconnect dimensions (``N`` shards, ``k`` wavelengths each).
    scheduler:
        Per-output contention-resolution algorithm, shared by all shards
        (every in-tree scheduler is stateless).  Pass ``scheduler_factory``
        instead to give each shard its own instance (required for stateful
        third-party schedulers under ``THREADS`` mode).
    policy:
        Grant policy among same-wavelength contenders (default:
        deterministic :class:`FixedPriorityPolicy`).
    queue_capacity, overflow:
        Per-shard bounded-queue settings (``None`` = unbounded).
    tick_interval:
        Sleep between ticks in :meth:`start`'s timer loop, seconds.
    max_batch_per_tick:
        Cap on requests drained per shard per tick (``None`` = all).
    mode, max_workers:
        Fan-out execution (see :class:`ExecutionMode`) and thread-pool
        width for the non-inline modes.
    telemetry:
        Optional shared :class:`Telemetry` registry (default: private).
    """

    def __init__(
        self,
        n_fibers: int,
        scheme: ConversionScheme,
        scheduler: Scheduler | None = None,
        *,
        scheduler_factory: Callable[[], Scheduler] | None = None,
        policy: GrantPolicy | None = None,
        queue_capacity: int | None = None,
        overflow: OverflowPolicy = OverflowPolicy.REJECT,
        tick_interval: float = 0.001,
        max_batch_per_tick: int | None = None,
        mode: ExecutionMode = ExecutionMode.INLINE,
        max_workers: int | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.n_fibers = check_positive_int(n_fibers, "n_fibers")
        self.scheme = scheme
        if (scheduler is None) == (scheduler_factory is None):
            raise InvalidParameterError(
                "pass exactly one of scheduler= or scheduler_factory="
            )
        self.policy = policy if policy is not None else FixedPriorityPolicy()
        if tick_interval < 0:
            raise InvalidParameterError(
                f"tick_interval must be >= 0, got {tick_interval}"
            )
        if max_batch_per_tick is not None:
            check_positive_int(max_batch_per_tick, "max_batch_per_tick")
        self.tick_interval = float(tick_interval)
        self.max_batch_per_tick = max_batch_per_tick
        self.mode = mode
        self.max_workers = max_workers
        self.telemetry = telemetry if telemetry is not None else Telemetry()

        if mode is ExecutionMode.VECTORIZED:
            self._batch_kernel = self._select_batch_kernel(scheme)

        self.shards: list[ShardWorker] = []
        for o in range(self.n_fibers):
            shard_scheduler = (
                scheduler_factory() if scheduler_factory is not None else scheduler
            )
            assert shard_scheduler is not None
            self.shards.append(
                ShardWorker(
                    o,
                    scheme,
                    shard_scheduler,
                    self.policy,
                    BoundedQueue(queue_capacity, overflow),
                    self.telemetry,
                )
            )
        # Input-side busy state (blocked-at-source admission): remaining
        # slots each input channel is held by a granted connection.
        self._in_busy = [[0] * scheme.k for _ in range(self.n_fibers)]
        self._slot = 0
        self._pool: ThreadPoolExecutor | None = None
        self._timer_task: asyncio.Task[None] | None = None
        self._closed = False

        t = self.telemetry
        self._c_submitted = t.counter("server.submitted")
        self._c_granted = t.counter("server.granted")
        self._c_contention = t.counter("server.rejected.contention")
        self._c_source = t.counter("server.rejected.source_blocked")
        self._c_queue_full = t.counter("server.rejected.queue_full")
        self._c_dropped = t.counter("server.dropped")
        self._c_timed_out = t.counter("server.timed_out")
        self._c_shutdown = t.counter("server.shutdown")
        self._c_ticks = t.counter("server.ticks")
        self._h_latency = t.histogram("server.grant_latency_seconds")
        self._h_tick = t.histogram("server.tick_seconds", _TICK_BUCKETS)
        self._h_occupancy = t.histogram("server.occupancy_channels", _OCCUPANCY_BUCKETS)
        self._g_slot = t.gauge("server.slot")
        self._g_depth = t.gauge("server.queue_depth_total")

    @staticmethod
    def _select_batch_kernel(scheme: ConversionScheme):
        if isinstance(scheme, NonCircularConversion):
            return batch_first_available
        if isinstance(scheme, CircularConversion) and not scheme.is_full_range:
            return batch_break_first_available
        raise InvalidParameterError(
            "VECTORIZED mode needs a non-circular (batch FA) or "
            f"non-full-range circular (batch BFA) scheme, got {scheme!r}"
        )

    # -- submission ---------------------------------------------------------

    @property
    def slot(self) -> int:
        """Index of the next slot tick."""
        return self._slot

    @property
    def queue_depth_total(self) -> int:
        return sum(s.queue.depth for s in self.shards)

    def submit_nowait(
        self, request: SlotRequest, timeout: float | None = None
    ) -> "asyncio.Future[ServiceGrant | Rejected]":
        """Enqueue ``request`` and return the future of its outcome.

        Must be called from the event loop.  ``timeout`` (seconds) is a
        deadline checked at tick time — a request that no tick has drained
        before the deadline resolves as ``TIMED_OUT``.  Malformed requests
        raise :class:`InvalidParameterError` immediately; overflow of a
        bounded queue resolves the future per the shard's overflow policy.
        """
        if self._closed:
            raise SimulationError("service is stopped")
        validate_slot_request(request, self.n_fibers, self.scheme.k)
        if timeout is not None and timeout < 0:
            raise InvalidParameterError(f"timeout must be >= 0, got {timeout}")
        loop = asyncio.get_running_loop()
        future: asyncio.Future[ServiceGrant | Rejected] = loop.create_future()
        deadline = None if timeout is None else loop.time() + timeout
        pending = _Pending(request, future, deadline, time.perf_counter())
        self._c_submitted.inc()
        shard = self.shards[request.output_fiber]
        shard.offered.inc()
        offer = shard.queue.offer(pending)
        if offer.evicted is not None:
            # DROP_OLDEST: the head made room and is lost.
            self._resolve_rejected(offer.evicted, RejectReason.DROPPED)
        if not offer.accepted:
            reason = (
                RejectReason.QUEUE_FULL
                if shard.queue.policy is OverflowPolicy.REJECT
                else RejectReason.DROPPED
            )
            self._resolve_rejected(pending, reason)
        shard.update_depth_gauge()
        return future

    async def submit(
        self, request: SlotRequest, timeout: float | None = None
    ) -> ServiceGrant | Rejected:
        """Enqueue ``request`` and await its grant/rejection."""
        return await self.submit_nowait(request, timeout)

    # -- resolution helpers -------------------------------------------------

    def _resolve(self, pending: _Pending, outcome: ServiceGrant | Rejected) -> None:
        if not pending.future.done():
            pending.future.set_result(outcome)

    def _resolve_rejected(
        self, pending: _Pending, reason: RejectReason, slot: int | None = None
    ) -> None:
        counter = {
            RejectReason.CONTENTION: self._c_contention,
            RejectReason.SOURCE_BLOCKED: self._c_source,
            RejectReason.QUEUE_FULL: self._c_queue_full,
            RejectReason.DROPPED: self._c_dropped,
            RejectReason.TIMED_OUT: self._c_timed_out,
            RejectReason.SHUTDOWN: self._c_shutdown,
        }[reason]
        counter.inc()
        self._resolve(pending, Rejected(pending.request, reason, slot))

    # -- one slot tick ------------------------------------------------------

    async def tick(self) -> int:
        """Run one slot tick; returns the number of grants issued."""
        if self._closed:
            raise SimulationError("service is stopped")
        t0 = time.perf_counter()
        loop = asyncio.get_running_loop()
        now = loop.time()
        slot = self._slot

        # 1 + 2: drain queues and run admission, shards in fiber order.
        work: list[tuple[ShardWorker, list[_Pending]]] = []
        seen_inputs: set[tuple[int, int]] = set()
        for shard in self.shards:
            drained = shard.queue.drain(self.max_batch_per_tick)
            shard.update_depth_gauge()
            survivors: list[_Pending] = []
            for p in drained:
                r = p.request
                if p.deadline is not None and now >= p.deadline:
                    self._resolve_rejected(p, RejectReason.TIMED_OUT, slot)
                elif (
                    self._in_busy[r.input_fiber][r.wavelength] > 0
                    or (r.input_fiber, r.wavelength) in seen_inputs
                ):
                    self._resolve_rejected(p, RejectReason.SOURCE_BLOCKED, slot)
                else:
                    seen_inputs.add((r.input_fiber, r.wavelength))
                    survivors.append(p)
            if survivors:
                work.append((shard, survivors))

        # 3: fan out the per-shard scheduling.
        if not work:
            outcomes: list[tuple[list[GrantedRequest], list[SlotRequest]]] = []
        elif self.mode is ExecutionMode.INLINE or len(work) == 1:
            outcomes = [
                shard.schedule([p.request for p in pendings])[1:]
                for shard, pendings in work
            ]
        elif self.mode is ExecutionMode.THREADS:
            pool = self._ensure_pool()
            tasks: list[Awaitable] = [
                loop.run_in_executor(
                    pool, shard.schedule, [p.request for p in pendings]
                )
                for shard, pendings in work
            ]
            outcomes = [res[1:] for res in await asyncio.gather(*tasks)]
        else:  # VECTORIZED
            pool = self._ensure_pool()
            outcomes = await loop.run_in_executor(
                pool, self._schedule_vectorized, work
            )

        # 4: commit grants, resolve futures.
        n_granted = 0
        for (shard, pendings), (granted, rejected) in zip(work, outcomes):
            shard.commit(granted)
            shard.record_rejected(len(rejected))
            by_input = {
                (p.request.input_fiber, p.request.wavelength): p for p in pendings
            }
            for g in granted:
                r = g.request
                self._in_busy[r.input_fiber][r.wavelength] = r.duration
                p = by_input[(r.input_fiber, r.wavelength)]
                self._c_granted.inc()
                self._h_latency.observe(time.perf_counter() - p.submitted_at)
                self._resolve(p, ServiceGrant(r, g.channel, slot))
                n_granted += 1
            for r in rejected:
                self._resolve_rejected(
                    by_input[(r.input_fiber, r.wavelength)],
                    RejectReason.CONTENTION,
                    slot,
                )

        # 5: advance clocks and record tick telemetry.
        self._h_occupancy.observe(sum(s.occupancy for s in self.shards))
        for shard in self.shards:
            shard.advance()
        for row in self._in_busy:
            for w, left in enumerate(row):
                if left > 0:
                    row[w] = left - 1
        self._slot += 1
        self._c_ticks.inc()
        self._g_slot.set(self._slot)
        self._g_depth.set(self.queue_depth_total)
        self._h_tick.observe(time.perf_counter() - t0)
        return n_granted

    def _schedule_vectorized(
        self, work: Sequence[tuple[ShardWorker, Sequence[_Pending]]]
    ) -> list[tuple[list[GrantedRequest], list[SlotRequest]]]:
        """Solve all shards' sub-problems as one NumPy batch (worker thread)."""
        k = self.scheme.k
        rows = len(work)
        req = np.zeros((rows, k), dtype=np.int64)
        avail = np.zeros((rows, k), dtype=bool)
        requests_per_row: list[list[SlotRequest]] = []
        for i, (shard, pendings) in enumerate(work):
            requests = [p.request for p in pendings]
            if any(r.priority != 0 for r in requests):
                raise SimulationError(
                    "VECTORIZED mode does not support priority classes; "
                    "use INLINE or THREADS"
                )
            requests_per_row.append(requests)
            req[i] = shard.request_vector(requests)
            avail[i] = shard.availability()
        # Inputs are built here from shard state, so skip kernel revalidation.
        assign = self._batch_kernel(
            req, avail, self.scheme.e, self.scheme.f, check=False
        )
        outcomes: list[tuple[list[GrantedRequest], list[SlotRequest]]] = []
        for i, (shard, _pendings) in enumerate(work):
            grants = [
                Grant(wavelength=int(assign[i, b]), channel=b)
                for b in range(k)
                if assign[i, b] >= 0
            ]
            outcomes.append(
                distribute_grants(
                    self.policy, shard.output_fiber, requests_per_row[i], grants
                )
            )
        return outcomes

    # -- run modes ----------------------------------------------------------

    async def run_ticks(self, n: int) -> int:
        """Run ``n`` back-to-back ticks (no sleeping); returns total grants."""
        check_positive_int(n, "n")
        return sum([await self.tick() for _ in range(n)])

    async def drain(self, max_ticks: int = 10_000) -> None:
        """Tick until every shard queue is empty (all futures resolved)."""
        ticks = 0
        while self.queue_depth_total > 0:
            if ticks >= max_ticks:
                raise SimulationError(
                    f"queues not drained after {max_ticks} ticks"
                )
            await self.tick()
            ticks += 1

    def start(self) -> None:
        """Run ticks on a background task every ``tick_interval`` seconds."""
        if self._timer_task is not None:
            raise SimulationError("service already started")
        if self._closed:
            raise SimulationError("service is stopped")
        self._timer_task = asyncio.get_running_loop().create_task(
            self._timer_loop(), name="repro-service-ticks"
        )

    async def _timer_loop(self) -> None:
        while True:
            await self.tick()
            await asyncio.sleep(self.tick_interval)

    async def stop(self) -> None:
        """Stop ticking, flush queued requests as ``SHUTDOWN``, free threads.

        Idempotent; after ``stop()`` the service refuses new submissions.
        """
        if self._timer_task is not None:
            self._timer_task.cancel()
            try:
                await self._timer_task
            except asyncio.CancelledError:
                pass
            self._timer_task = None
        if not self._closed:
            self._closed = True
            for shard in self.shards:
                for p in shard.queue.drain():
                    self._resolve_rejected(p, RejectReason.SHUTDOWN)
                shard.update_depth_gauge()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="repro-service"
            )
        return self._pool
