"""The asyncio scheduling server: slot ticks, shard fan-out, timeouts.

:class:`SchedulingService` turns the paper's per-slot batch schedulers into
a long-running online service.  Callers submit
:class:`~repro.core.distributed.SlotRequest`\\ s at any time; the server
batches everything enqueued since the last tick into one *slot tick* —
the service-side analogue of the simulator's synchronous time slot — and
resolves each request's future with a :class:`ServiceGrant` or
:class:`Rejected`.

One tick does, in order (mirroring ``SlottedSimulator.step`` exactly, which
is what the equivalence test relies on):

1. **Drain** each shard's bounded queue (FIFO, optionally capped per tick).
2. **Admission**: expire requests past their deadline (``TIMED_OUT``) and
   requests whose input channel is still held by an earlier multi-slot
   grant or by an earlier request in this same tick (``SOURCE_BLOCKED`` —
   the input laser cannot transmit two signals).
3. **Fan-out**: run each shard's per-output scheduler on the survivors —
   inline on the event loop, on a thread pool (one task per shard), or via
   the NumPy vectorized batch kernels on a worker thread
   (:class:`ExecutionMode`).
4. **Commit**: hold granted output/input channels for the connection's
   duration, resolve futures, record telemetry (grant latency, tick
   duration, occupancy, queue depths).
5. **Advance** every shard's channel clock and the input-side busy state.

Drive ticks yourself (:meth:`SchedulingService.tick`,
:meth:`~SchedulingService.run_ticks` — deterministic, used by tests) or let
:meth:`~SchedulingService.start` run them on a wall-clock interval.
"""

from __future__ import annotations

import asyncio
import enum
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Awaitable, Callable, Sequence

import numpy as np

from repro.core.base import Scheduler
from repro.core.batch import batch_first_available
from repro.core.batch_bfa import batch_break_first_available
from repro.core.distributed import (
    GrantedRequest,
    SlotRequest,
    distribute_grants,
    validate_slot_request,
)
from repro.core.policies import FixedPriorityPolicy, GrantPolicy
from repro.errors import (
    DurabilityError,
    InvalidParameterError,
    ShardDownError,
    SimulationError,
)
from repro.faults import (
    ChannelOutage,
    ConverterDegradation,
    FaultInjector,
    FaultPlan,
    as_injector,
)
from repro.graphs.conversion import (
    CircularConversion,
    ConversionScheme,
    NonCircularConversion,
)
from repro.service.breaker import BreakerConfig, CircuitBreaker
from repro.service.edge import PendingRequest, SubmissionEdge
from repro.service.durability import (
    DurabilityConfig,
    DurabilityManager,
    RecoveredShardState,
)
from repro.service.journal import (
    FAULT_CRASH,
    FAULT_OUTAGE,
    request_tuple,
)
from repro.service.queue import BoundedQueue, OverflowPolicy, TenantAdmission
from repro.service.ratelimit import RateLimitConfig, TokenBucketLimiter
from repro.service.shard import ShardWorker
from repro.service.supervisor import ShardSupervisor, SupervisorConfig
from repro.service.telemetry import Telemetry, exponential_buckets
from repro.service.tickloop import InputAdmission
from repro.types import Grant
from repro.util.validation import check_positive_int

__all__ = [
    "ExecutionMode",
    "RejectReason",
    "ServiceGrant",
    "Rejected",
    "SchedulingService",
]


class ExecutionMode(enum.Enum):
    """How one tick's shard fan-out executes.

    ``INLINE`` — sequentially on the event loop, shards in ascending
    output-fiber order.  Deterministic for every policy; the mode the
    simulator-equivalence guarantee covers.

    ``THREADS`` — one executor task per shard.  Scheduling is a pure read
    of shard state, so this is safe; determinism additionally requires a
    stateless (or per-shard) grant policy because shards may interleave
    policy calls.

    ``VECTORIZED`` — all shards' request vectors stacked into one
    ``(M, k)`` NumPy batch solved by the
    :func:`~repro.core.batch.batch_first_available` /
    :func:`~repro.core.batch_bfa.batch_break_first_available` kernels on a
    worker thread (keeping the event loop responsive).  Requires a
    non-circular or circular (non-full-range) scheme and single-priority
    traffic.
    """

    INLINE = "inline"
    THREADS = "threads"
    VECTORIZED = "vectorized"


class RejectReason(enum.Enum):
    """Why a submitted request did not get a channel."""

    #: Lost the output contention this tick (no free compatible channel).
    CONTENTION = "contention"
    #: Input channel still busy with an earlier grant (or an earlier
    #: request in the same tick) — blocked at source.
    SOURCE_BLOCKED = "source_blocked"
    #: Bounded shard queue was full under the ``REJECT`` policy.
    QUEUE_FULL = "queue_full"
    #: Dropped by a ``DROP_TAIL``/``DROP_OLDEST`` queue overflow.
    DROPPED = "dropped"
    #: Deadline passed before a tick could schedule it.
    TIMED_OUT = "timed_out"
    #: Service stopped with the request still queued.
    SHUTDOWN = "shutdown"
    #: The owning shard worker is down (crashed, not yet restarted).
    SHARD_DOWN = "shard_down"
    #: Short-circuited by the shard's open circuit breaker.
    CIRCUIT_OPEN = "circuit_open"
    #: A retry of a ``request_id`` whose original is still in flight —
    #: refused so at most one copy is ever scheduled (exactly-once; a
    #: retry of an already *granted* id replays the original grant
    #: instead of getting this).
    DUPLICATE = "duplicate"
    #: Shed by per-tenant admission control (``SHED`` overflow policy):
    #: either evicted from the queue as the least-deserving request, or
    #: refused at the door because the newcomer itself was least
    #: deserving.  Unlike ``DROPPED``, the casualty is chosen by priority
    #: class and weighted tenant share, not FIFO position.
    ADMISSION_SHED = "admission_shed"
    #: Refused at the edge by the per-tenant token-bucket rate limiter
    #: (:mod:`repro.service.ratelimit`) — the tenant's bucket was empty,
    #: so the request never reached a queue or a shard.
    RATE_LIMITED = "rate_limited"
    #: The backend responsible for this request is unreachable — an
    #: edge↔worker partition or a worker that stayed unresponsive through
    #: the pool's respawn budget.  Unlike ``SHARD_DOWN`` (the shard
    #: itself crashed and its state is gone until supervision heals it),
    #: the shard's state is intact somewhere we cannot currently reach;
    #: the typed reject is the graceful degradation, and retrying after
    #: the partition heals is expected to succeed.  Wire protocol ≥ 4;
    #: older peers see ``SHARD_DOWN``.
    UNAVAILABLE = "unavailable"


@dataclass(frozen=True, slots=True)
class ServiceGrant:
    """A granted request: the assigned output channel and the grant slot."""

    request: SlotRequest
    channel: int
    slot: int


@dataclass(frozen=True, slots=True)
class Rejected:
    """A request that resolved without a channel, and why."""

    request: SlotRequest
    reason: RejectReason
    slot: int | None = None


#: Back-compat alias: the envelope moved to :mod:`repro.service.edge`.
_Pending = PendingRequest


#: Tick-duration buckets: 10 µs … ~40 s.
_TICK_BUCKETS = exponential_buckets(10e-6, 2.0, 22)
#: Occupancy buckets: 1 … 2^19 busy channels.
_OCCUPANCY_BUCKETS = exponential_buckets(1.0, 2.0, 20)


class SchedulingService:
    """Sharded online scheduling service for an ``N × N`` interconnect.

    Parameters
    ----------
    n_fibers, scheme:
        Interconnect dimensions (``N`` shards, ``k`` wavelengths each).
    scheduler:
        Per-output contention-resolution algorithm, shared by all shards
        (every in-tree scheduler is stateless).  Pass ``scheduler_factory``
        instead to give each shard its own instance (required for stateful
        third-party schedulers under ``THREADS`` mode).
    policy:
        Grant policy among same-wavelength contenders (default:
        deterministic :class:`FixedPriorityPolicy`).
    queue_capacity, overflow, admission:
        Per-shard bounded-queue settings (``None`` = unbounded).
        ``admission`` is the per-tenant weight contract consulted by the
        ``SHED`` overflow policy (ignored otherwise; defaults to
        equal-weight tenants).
    tick_interval:
        Sleep between tick bursts in :meth:`start`'s timer loop, seconds.
    max_batch_per_tick:
        Cap on requests drained per shard per tick (``None`` = all).
    tick_window:
        Ticks :meth:`tick_burst` (and so :meth:`start`'s timer loop) may
        run back to back per event-loop iteration: the first tick always
        runs, and the burst continues — up to ``tick_window`` ticks —
        only while shard queues are non-empty, amortizing per-iteration
        overhead exactly when the service is behind.  Within a burst,
        idle shards' ``ADVANCE`` journal records are deferred and
        coalesced into one batched record
        (:meth:`~repro.service.journal.ShardJournal.defer_advance`);
        any non-idle event on a shard flushes its run first, so grant
        ordering and recovery are unchanged.  Default 1 — every tick is
        its own iteration, the pre-window behavior.
    mode, max_workers:
        Fan-out execution (see :class:`ExecutionMode`) and thread-pool
        width for the non-inline modes.
    telemetry:
        Optional shared :class:`Telemetry` registry (default: private).
    faults:
        Optional :class:`~repro.faults.FaultPlan` / shared injector.
        Channel outages darken shard channels, converter degradations
        narrow the affected inputs' schemes, and shard crashes kill the
        owning worker at the scheduled tick (the supervisor restarts it;
        see ``docs/ROBUSTNESS.md``).  ``VECTORIZED`` mode rejects plans
        with degradations (one batch kernel, one scheme).
    breaker:
        Optional :class:`~repro.service.breaker.BreakerConfig`; when given,
        every shard gets a circuit breaker and submissions to a tripped
        shard fast-fail as ``CIRCUIT_OPEN``.
    supervisor:
        :class:`~repro.service.supervisor.SupervisorConfig` tuning for
        crash detection/restart (a supervisor always runs; this only
        changes its timing).
    durability:
        ``True`` (default) — per-shard write-ahead journal + periodic
        snapshots with the default in-memory backend, exact
        snapshot+journal recovery on restart, and a bounded request-id
        dedup table for exactly-once grants.  Pass a
        :class:`~repro.service.durability.DurabilityConfig` to tune
        (snapshot cadence, file backend, fsync, dedup capacity) or
        ``False``/``None`` to disable, which falls back to the PR 4 aged
        checkpoints.  See ``docs/ROBUSTNESS.md``, "Durability & recovery".
    rate_limit:
        Optional :class:`~repro.service.ratelimit.RateLimitConfig`; when
        given, every submission spends a token from its tenant's bucket
        and an empty bucket resolves the request ``RATE_LIMITED`` at the
        edge (never queued).  Buckets refill at each tick, so limiting is
        deterministic — no clocks (``docs/SERVICE.md``).
    """

    def __init__(
        self,
        n_fibers: int,
        scheme: ConversionScheme,
        scheduler: Scheduler | None = None,
        *,
        scheduler_factory: Callable[[], Scheduler] | None = None,
        policy: GrantPolicy | None = None,
        queue_capacity: int | None = None,
        overflow: OverflowPolicy = OverflowPolicy.REJECT,
        admission: TenantAdmission | None = None,
        tick_interval: float = 0.001,
        max_batch_per_tick: int | None = None,
        tick_window: int = 1,
        mode: ExecutionMode = ExecutionMode.INLINE,
        max_workers: int | None = None,
        telemetry: Telemetry | None = None,
        faults: "FaultInjector | FaultPlan | None" = None,
        breaker: BreakerConfig | None = None,
        supervisor: SupervisorConfig | None = None,
        durability: "DurabilityConfig | bool | None" = True,
        rate_limit: "RateLimitConfig | None" = None,
    ) -> None:
        self.n_fibers = check_positive_int(n_fibers, "n_fibers")
        self.scheme = scheme
        if (scheduler is None) == (scheduler_factory is None):
            raise InvalidParameterError(
                "pass exactly one of scheduler= or scheduler_factory="
            )
        self.policy = policy if policy is not None else FixedPriorityPolicy()
        if tick_interval < 0:
            raise InvalidParameterError(
                f"tick_interval must be >= 0, got {tick_interval}"
            )
        if max_batch_per_tick is not None:
            check_positive_int(max_batch_per_tick, "max_batch_per_tick")
        self.tick_interval = float(tick_interval)
        self.max_batch_per_tick = max_batch_per_tick
        self.tick_window = check_positive_int(tick_window, "tick_window")
        # True while tick_burst() has a window open: idle-shard ADVANCEs
        # are deferred for coalescing instead of journaled per tick.
        self._window_open = False
        self.mode = mode
        self.max_workers = max_workers
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._faults = as_injector(faults, self.n_fibers, scheme.k)
        if (
            mode is ExecutionMode.VECTORIZED
            and self._faults is not None
            and self._faults.has_degradations
        ):
            raise InvalidParameterError(
                "VECTORIZED mode runs one batch kernel with one scheme and "
                "cannot express per-input converter degradation; use INLINE "
                "or THREADS for plans with ConverterDegradation events"
            )

        if mode is ExecutionMode.VECTORIZED:
            self._batch_kernel = self._select_batch_kernel(scheme)

        # Kept for shard restarts: a replacement worker gets a fresh
        # scheduler from the factory (or the shared stateless one).
        self._scheduler = scheduler
        self._scheduler_factory = scheduler_factory
        self.supervisor = ShardSupervisor(supervisor, self.telemetry)
        self.shards: list[ShardWorker] = []
        for o in range(self.n_fibers):
            shard_scheduler = (
                scheduler_factory() if scheduler_factory is not None else scheduler
            )
            assert shard_scheduler is not None
            self.shards.append(
                ShardWorker(
                    o,
                    scheme,
                    shard_scheduler,
                    self.policy,
                    BoundedQueue(queue_capacity, overflow, admission),
                    self.telemetry,
                )
            )
        self.breakers: list[CircuitBreaker] | None = (
            [
                CircuitBreaker(breaker, self.telemetry, shard=o)
                for o in range(self.n_fibers)
            ]
            if breaker is not None
            else None
        )
        # Input-side busy state (blocked-at-source admission): remaining
        # slots each input channel is held by a granted connection.  The
        # state machine is shared with the multi-process parent (see
        # repro/service/tickloop.py).
        self._admission = InputAdmission(self.n_fibers, scheme.k)
        self._in_busy = self._admission.in_busy
        self._slot = 0
        self._pool: ThreadPoolExecutor | None = None
        self._timer_task: asyncio.Task[None] | None = None
        self._closed = False

        if durability is True:
            durability = DurabilityConfig()
        elif durability is False:
            durability = None
        if durability is not None and not isinstance(durability, DurabilityConfig):
            raise InvalidParameterError(
                "durability must be a DurabilityConfig, True, False, or "
                f"None, got {durability!r}"
            )
        self.durability: DurabilityManager | None = (
            DurabilityManager(
                durability, self.n_fibers, scheme.k, self.telemetry
            )
            if durability is not None
            else None
        )
        self.rate_limiter: TokenBucketLimiter | None = (
            TokenBucketLimiter(rate_limit, self.telemetry)
            if rate_limit is not None
            else None
        )
        # The transport edge: futures, dedup, per-reason counters (shared
        # implementation with the TCP/multi-process front doors).
        self.edge = SubmissionEdge(
            self.telemetry,
            dedup_capacity=(
                durability.dedup_capacity if durability is not None else 0
            ),
        )

        t = self.telemetry
        self._c_submitted = self.edge.c_submitted
        self._c_granted = self.edge.c_granted
        self._c_shard_crashes = t.counter("server.shard_crashes")
        self._c_fault_outages = t.counter("faults.outages")
        self._c_fault_degradations = t.counter("faults.degradations")
        self._c_fault_crashes = t.counter("faults.crashes")
        self._g_dark = t.gauge("faults.dark_channels")
        self._c_ticks = t.counter("server.ticks")
        self._h_latency = t.histogram("server.grant_latency_seconds")
        self._h_tick = t.histogram("server.tick_seconds", _TICK_BUCKETS)
        self._h_occupancy = t.histogram("server.occupancy_channels", _OCCUPANCY_BUCKETS)
        self._g_slot = t.gauge("server.slot")
        self._g_depth = t.gauge("server.queue_depth_total")

    @staticmethod
    def _select_batch_kernel(scheme: ConversionScheme):
        if isinstance(scheme, NonCircularConversion):
            return batch_first_available
        if isinstance(scheme, CircularConversion) and not scheme.is_full_range:
            return batch_break_first_available
        raise InvalidParameterError(
            "VECTORIZED mode needs a non-circular (batch FA) or "
            f"non-full-range circular (batch BFA) scheme, got {scheme!r}"
        )

    # -- submission ---------------------------------------------------------

    @property
    def slot(self) -> int:
        """Index of the next slot tick."""
        return self._slot

    @property
    def queue_depth_total(self) -> int:
        return sum(s.queue.depth for s in self.shards)

    def submit_nowait(
        self,
        request: SlotRequest,
        timeout: float | None = None,
        *,
        timeout_ticks: int | None = None,
        request_id: str | None = None,
    ) -> "asyncio.Future[ServiceGrant | Rejected]":
        """Enqueue ``request`` and return the future of its outcome.

        Must be called from the event loop.  ``timeout`` (seconds) is a
        deadline checked at tick time — a request that no tick has drained
        before the deadline resolves as ``TIMED_OUT``.  ``timeout_ticks``
        is the deterministic flavor: the request expires when a tick
        drains it at ``slot >= submit slot + timeout_ticks`` (so ``0``
        expires at the very next drain).  The two may be combined;
        whichever trips first wins.  Malformed requests
        raise :class:`InvalidParameterError` immediately; overflow of a
        bounded queue resolves the future per the shard's overflow policy.

        ``request_id`` is the caller's idempotency key (ignored when the
        dedup table is disabled).  Resubmitting an id whose original was
        *granted* replays that grant; resubmitting while the original is
        still in flight resolves ``DUPLICATE``.  A rejected original
        releases its id, so the retry is a fresh attempt.  Either way at
        most one copy of the request is ever scheduled — the exactly-once
        half of the retry story (``docs/SERVICE.md``).
        """
        if self._closed:
            raise SimulationError("service is stopped")
        validate_slot_request(request, self.n_fibers, self.scheme.k)
        if timeout is not None and timeout < 0:
            raise InvalidParameterError(f"timeout must be >= 0, got {timeout}")
        if timeout_ticks is not None and timeout_ticks < 0:
            raise InvalidParameterError(
                f"timeout_ticks must be >= 0, got {timeout_ticks}"
            )
        loop = asyncio.get_running_loop()
        future: asyncio.Future[ServiceGrant | Rejected] = loop.create_future()
        deadline = None if timeout is None else loop.time() + timeout
        deadline_slot = (
            None if timeout_ticks is None else self._slot + timeout_ticks
        )
        if request_id is not None:
            request_id = self.edge.check_duplicate(
                request, request_id, future, self._slot
            )
            if future.done():
                return future
        pending = _Pending(
            request,
            future,
            deadline,
            time.perf_counter(),
            request_id,
            deadline_slot,
        )
        self.edge.note_submitted(request)
        if self.rate_limiter is not None and not self.rate_limiter.allow(
            request.tenant
        ):
            self._resolve_rejected(pending, RejectReason.RATE_LIMITED)
            return future
        shard = self.shards[request.output_fiber]
        breaker = (
            self.breakers[request.output_fiber]
            if self.breakers is not None
            else None
        )
        # Fault fast-paths, checked before the request touches the shard:
        # an open breaker short-circuits for free (not a shard failure —
        # the shard never saw the request); a down shard is a failure the
        # breaker counts, which is what eventually trips it.
        if breaker is not None and not breaker.allow(self._slot):
            self._resolve_rejected(pending, RejectReason.CIRCUIT_OPEN)
            return future
        if shard.down:
            if breaker is not None:
                breaker.record_failure(self._slot)
            self._resolve_rejected(pending, RejectReason.SHARD_DOWN)
            return future
        shard.offered.inc()
        shed = shard.queue.policy is OverflowPolicy.SHED
        if self.durability is not None:
            # Write-ahead: journal the queue effect before applying it.
            journal = self.durability.journal(request.output_fiber)
            if shed:
                decision = shard.queue.plan_admit(pending)
                if decision.evict_index is not None:
                    journal.evict(self._slot, decision.evict_index)
                if decision.accepted:
                    journal.accept(self._slot, request)
            else:
                will_accept, will_evict = shard.queue.plan_offer()
                if will_evict:
                    journal.dequeue(self._slot, 1)
                if will_accept:
                    journal.accept(self._slot, request)
        offer = shard.queue.offer(pending)
        if offer.evicted is not None:
            # DROP_OLDEST: the head made room; SHED: the least-deserving
            # request made room.  Either way the victim is lost.
            self._resolve_rejected(
                offer.evicted,
                RejectReason.ADMISSION_SHED if shed else RejectReason.DROPPED,
            )
        if not offer.accepted:
            if shed:
                reason = RejectReason.ADMISSION_SHED
            elif shard.queue.policy is OverflowPolicy.REJECT:
                reason = RejectReason.QUEUE_FULL
            else:
                reason = RejectReason.DROPPED
            self._resolve_rejected(pending, reason)
        shard.update_depth_gauge()
        return future

    async def submit(
        self, request: SlotRequest, timeout: float | None = None
    ) -> ServiceGrant | Rejected:
        """Enqueue ``request`` and await its grant/rejection."""
        return await self.submit_nowait(request, timeout)

    # -- resolution helpers (delegated to the shared edge) -------------------

    def _resolve(self, pending: _Pending, outcome: ServiceGrant | Rejected) -> None:
        self.edge.resolve(pending, outcome)

    def _resolve_rejected(
        self, pending: _Pending, reason: RejectReason, slot: int | None = None
    ) -> None:
        self.edge.resolve_rejected(pending, reason, slot)

    # -- crash / restart ----------------------------------------------------

    def _crash_shard(
        self, shard: ShardWorker, slot: int, cause: BaseException | None
    ) -> None:
        """A shard died (injected or organic): record it, trip its breaker,
        fail its queued requests fast with ``SHARD_DOWN``."""
        if not shard.down:
            shard.crash(cause)
        o = shard.output_fiber
        self.supervisor.record_crash(o, slot)
        self._c_shard_crashes.inc()
        if self.breakers is not None:
            self.breakers[o].force_open(slot)
        if self.durability is not None:
            journal = self.durability.journal(o)
            journal.fault(slot, FAULT_CRASH)
            if shard.queue.depth:
                journal.dequeue(slot, shard.queue.depth)
        for p in shard.queue.drain():
            self._resolve_rejected(p, RejectReason.SHARD_DOWN, slot)
        shard.update_depth_gauge()

    def _spawn_worker(self, output_fiber: int, queue: BoundedQueue) -> ShardWorker:
        shard_scheduler = (
            self._scheduler_factory()
            if self._scheduler_factory is not None
            else self._scheduler
        )
        assert shard_scheduler is not None
        return ShardWorker(
            output_fiber,
            self.scheme,
            shard_scheduler,
            self.policy,
            queue,
            self.telemetry,
        )

    def _restart_shard(self, output_fiber: int, slot: int) -> None:
        """Spawn a replacement worker (the queue object survives the worker
        — it lives in the server, like a socket outliving the process
        behind it), restored from snapshot+journal replay when durability
        is on, else from the supervisor's aged checkpoint."""
        old = self.shards[output_fiber]
        worker = self._spawn_worker(output_fiber, old.queue)
        if self.durability is not None:
            state = self._recovered_state(output_fiber, old)
            worker.restore(list(state.busy))
            source = state.source
        else:
            worker.restore(
                self.supervisor.restore_busy(output_fiber, slot, self.scheme.k)
            )
            source = "checkpoint"
        self.shards[output_fiber] = worker
        self.supervisor.mark_restarted(output_fiber, source=source)

    def _recovered_state(
        self, output_fiber: int, old: ShardWorker
    ) -> RecoveredShardState:
        """Run durable recovery and cross-check it against the surviving
        live queue — a disagreement is a crash-consistency defect, not a
        degraded mode, so it raises."""
        assert self.durability is not None
        state = self.durability.recover(output_fiber)
        live = tuple(request_tuple(p.request) for p in old.queue)
        if live != state.queue:
            raise DurabilityError(
                f"shard {output_fiber}: journal-recovered queue "
                f"{state.queue} disagrees with the live queue {live}"
            )
        return state

    def recover_shard(self, output_fiber: int) -> RecoveredShardState:
        """Immediately rebuild one shard from durable state.

        Loads the latest valid snapshot, deterministically replays the
        journal suffix, installs a fresh worker with the rebuilt ``busy[]``
        over the surviving queue, and returns what was recovered.  This is
        the recovery path the kill-at-every-tick equivalence test drives
        directly (the supervisor's delayed ``_restart_shard`` uses the
        same replay); call it at a tick boundary.
        """
        if self.durability is None:
            raise InvalidParameterError(
                "recover_shard needs the service built with durability on"
            )
        old = self.shards[output_fiber]
        state = self._recovered_state(output_fiber, old)
        worker = self._spawn_worker(output_fiber, old.queue)
        worker.restore(list(state.busy))
        self.shards[output_fiber] = worker
        self.supervisor.mark_restarted(output_fiber, source=state.source)
        return state

    def _apply_faults(self, slot: int) -> "dict[int, tuple[int, int]] | None":
        """Step 0 of a tick: heal due restarts, then apply this slot's
        injected faults.  Returns the active converter degradations."""
        for o in self.supervisor.due_for_restart(slot):
            self._restart_shard(o, slot)
        if self._faults is None:
            return None
        for ev in self._faults.starting_at(slot):
            if isinstance(ev, ChannelOutage):
                self._c_fault_outages.inc()
                if self.durability is not None:
                    # Audit-only record (no replay effect): the fault plan
                    # is re-derivable from its seed, but the journal should
                    # tell the whole story of what hit this shard.
                    self.durability.journal(ev.fiber).fault(
                        slot, FAULT_OUTAGE, ev.wavelength, ev.duration
                    )
            elif isinstance(ev, ConverterDegradation):
                self._c_fault_degradations.inc()
            else:
                self._c_fault_crashes.inc()
        for ev in self._faults.crashes_at(slot):
            self._crash_shard(self.shards[ev.fiber], slot, None)
        mask = self._faults.dark_mask(slot)
        any_dark = bool(mask.any())
        self._g_dark.set(int(mask.sum()))
        for shard in self.shards:
            shard.set_dark(mask[shard.output_fiber] if any_dark else None)
        return self._faults.degradations_at(slot) or None

    # -- one slot tick ------------------------------------------------------

    async def tick(self) -> int:
        """Run one slot tick; returns the number of grants issued."""
        if self._closed:
            raise SimulationError("service is stopped")
        t0 = time.perf_counter()
        loop = asyncio.get_running_loop()
        now = loop.time()
        slot = self._slot

        # 0: supervision heal + injected faults for this slot.
        degradations = self._apply_faults(slot)

        # 1 + 2: drain queues and run admission, shards in fiber order
        # (the admission state machine is shared with the multi-process
        # parent — see repro/service/tickloop.py).
        work: list[tuple[ShardWorker, list[_Pending]]] = []
        seen_inputs = self._admission.begin_tick()
        for shard in self.shards:
            if self.durability is not None:
                depth = shard.queue.depth
                n_drain = (
                    depth
                    if self.max_batch_per_tick is None
                    else min(depth, self.max_batch_per_tick)
                )
                if n_drain:
                    self.durability.journal(shard.output_fiber).dequeue(
                        slot, n_drain
                    )
            drained = shard.queue.drain(self.max_batch_per_tick)
            shard.update_depth_gauge()
            survivors, expired, blocked = self._admission.admit(
                drained, now, seen_inputs, slot
            )
            for p in expired:
                self._resolve_rejected(p, RejectReason.TIMED_OUT, slot)
                if self.breakers is not None:
                    # A timed-out request is a shard that was too slow —
                    # the breaker counts it against the shard's health.
                    self.breakers[shard.output_fiber].record_failure(slot)
            for p in blocked:
                self._resolve_rejected(p, RejectReason.SOURCE_BLOCKED, slot)
            if survivors:
                work.append((shard, survivors))

        # 3: fan out the per-shard scheduling.  A shard whose scheduler
        # raises is a crashed shard (ShardDownError, original defect on the
        # chain) — it is isolated to a None outcome so the other shards'
        # grants still commit this tick.
        outcomes: list[
            tuple[list[GrantedRequest], list[SlotRequest]] | None
        ]
        if not work:
            outcomes = []
        elif self.mode is ExecutionMode.INLINE or len(work) == 1:
            outcomes = []
            for shard, pendings in work:
                try:
                    outcomes.append(
                        shard.schedule(
                            [p.request for p in pendings], degradations
                        )[1:]
                    )
                except ShardDownError as exc:
                    self._crash_shard(shard, slot, exc)
                    outcomes.append(None)
        elif self.mode is ExecutionMode.THREADS:
            pool = self._ensure_pool()
            tasks: list[Awaitable] = [
                loop.run_in_executor(
                    pool,
                    shard.schedule,
                    [p.request for p in pendings],
                    degradations,
                )
                for shard, pendings in work
            ]
            results = await asyncio.gather(*tasks, return_exceptions=True)
            outcomes = []
            for (shard, pendings), res in zip(work, results):
                if isinstance(res, ShardDownError):
                    self._crash_shard(shard, slot, res)
                    outcomes.append(None)
                elif isinstance(res, BaseException):
                    raise res
                else:
                    outcomes.append(res[1:])
        else:  # VECTORIZED
            pool = self._ensure_pool()
            outcomes = await loop.run_in_executor(
                pool, self._schedule_vectorized, work
            )

        # 4: commit grants, resolve futures.
        n_granted = 0
        for (shard, pendings), outcome in zip(work, outcomes):
            if outcome is None:
                # The shard died mid-tick; its drained survivors fail fast.
                for p in pendings:
                    self._resolve_rejected(p, RejectReason.SHARD_DOWN, slot)
                    if self.breakers is not None:
                        self.breakers[shard.output_fiber].record_failure(slot)
                continue
            granted, rejected = outcome
            if self.durability is not None and granted:
                # Write-ahead: journal the tick's grants (one batched
                # record) before committing any of them.
                self.durability.journal(shard.output_fiber).grant_batch(
                    slot,
                    (
                        (
                            g.request.input_fiber,
                            g.request.wavelength,
                            g.channel,
                            g.request.duration,
                        )
                        for g in granted
                    ),
                )
            shard.commit(granted)
            shard.record_rejected(len(rejected))
            by_input = {
                (p.request.input_fiber, p.request.wavelength): p for p in pendings
            }
            breaker = (
                self.breakers[shard.output_fiber]
                if self.breakers is not None
                else None
            )
            for g in granted:
                r = g.request
                self._admission.hold(r)
                p = by_input[(r.input_fiber, r.wavelength)]
                self.edge.note_granted(r)
                self._h_latency.observe(time.perf_counter() - p.submitted_at)
                self._resolve(p, ServiceGrant(r, g.channel, slot))
                if breaker is not None:
                    breaker.record_success(slot)
                n_granted += 1
            for r in rejected:
                self._resolve_rejected(
                    by_input[(r.input_fiber, r.wavelength)],
                    RejectReason.CONTENTION,
                    slot,
                )
                if breaker is not None:
                    # Losing contention is a *healthy* outcome — the shard
                    # answered; it counts toward closing, not opening.
                    breaker.record_success(slot)

        # 5: advance clocks and record tick telemetry.
        self._h_occupancy.observe(sum(s.occupancy for s in self.shards))
        for shard in self.shards:
            if self.durability is not None:
                # The connections busy[] tracks live in the interconnect,
                # so the physical clock advances for down shards too —
                # this is what makes recovery pure replay with no aging.
                journal = self.durability.journal(shard.output_fiber)
                if self._window_open:
                    journal.defer_advance(slot)
                else:
                    journal.advance(slot)
            if not shard.down:
                shard.advance()
                if self.durability is None:
                    self.supervisor.note_checkpoint(
                        shard.output_fiber, slot + 1, shard.busy_snapshot()
                    )
        if self.durability is not None and self.durability.due_snapshot(
            slot + 1
        ):
            policy_state = self.policy.export_state()
            for shard in self.shards:
                if shard.down:
                    continue
                self.durability.take_snapshot(
                    shard.output_fiber,
                    slot + 1,
                    shard.busy_snapshot(),
                    (request_tuple(p.request) for p in shard.queue),
                    policy_state,
                )
        self._admission.decay()
        if self.rate_limiter is not None:
            self.rate_limiter.advance()
        self._slot += 1
        self._c_ticks.inc()
        self._g_slot.set(self._slot)
        self._g_depth.set(self.queue_depth_total)
        self._h_tick.observe(time.perf_counter() - t0)
        return n_granted

    def _schedule_vectorized(
        self, work: Sequence[tuple[ShardWorker, Sequence[_Pending]]]
    ) -> list[tuple[list[GrantedRequest], list[SlotRequest]]]:
        """Solve all shards' sub-problems as one NumPy batch (worker thread)."""
        k = self.scheme.k
        rows = len(work)
        req = np.zeros((rows, k), dtype=np.int64)
        avail = np.zeros((rows, k), dtype=bool)
        requests_per_row: list[list[SlotRequest]] = []
        for i, (shard, pendings) in enumerate(work):
            requests = [p.request for p in pendings]
            if any(r.priority != 0 for r in requests):
                raise SimulationError(
                    "VECTORIZED mode does not support priority classes; "
                    "use INLINE or THREADS"
                )
            requests_per_row.append(requests)
            req[i] = shard.request_vector(requests)
            avail[i] = shard.availability()
        # Inputs are built here from shard state, so skip kernel revalidation.
        assign = self._batch_kernel(
            req, avail, self.scheme.e, self.scheme.f, check=False
        )
        outcomes: list[tuple[list[GrantedRequest], list[SlotRequest]]] = []
        for i, (shard, _pendings) in enumerate(work):
            grants = [
                Grant(wavelength=int(assign[i, b]), channel=b)
                for b in range(k)
                if assign[i, b] >= 0
            ]
            outcomes.append(
                distribute_grants(
                    self.policy, shard.output_fiber, requests_per_row[i], grants
                )
            )
        return outcomes

    # -- run modes ----------------------------------------------------------

    async def run_ticks(self, n: int) -> int:
        """Run ``n`` back-to-back ticks (no sleeping); returns total grants."""
        check_positive_int(n, "n")
        return sum([await self.tick() for _ in range(n)])

    async def tick_burst(self) -> int:
        """Run one burst of up to ``tick_window`` ticks; returns grants.

        The first tick always runs; the burst continues only while shard
        queues hold work, so an idle service still ticks exactly once per
        timer iteration and a backlogged one catches up ``tick_window``
        slots at a time.  While the window is open, idle shards'
        ``ADVANCE`` records are deferred; the burst ends by flushing every
        shard's run, so the journals are always fully written between
        bursts (a crash *inside* a burst loses at most the open window's
        pure clock advances — see
        :meth:`~repro.service.journal.ShardJournal.defer_advance`).
        """
        self._window_open = self.tick_window > 1
        try:
            granted = await self.tick()
            ticks = 1
            while ticks < self.tick_window and self.queue_depth_total > 0:
                granted += await self.tick()
                ticks += 1
        finally:
            self._window_open = False
            if self.durability is not None:
                for shard in self.shards:
                    self.durability.journal(shard.output_fiber).flush_deferred()
        return granted

    async def drain(self, max_ticks: int = 10_000) -> None:
        """Tick until every shard queue is empty (all futures resolved)."""
        ticks = 0
        while self.queue_depth_total > 0:
            if ticks >= max_ticks:
                raise SimulationError(
                    f"queues not drained after {max_ticks} ticks"
                )
            await self.tick()
            ticks += 1

    def start(self) -> None:
        """Run tick bursts on a background task every ``tick_interval``
        seconds (each burst is up to ``tick_window`` ticks; see
        :meth:`tick_burst`)."""
        if self._timer_task is not None:
            raise SimulationError("service already started")
        if self._closed:
            raise SimulationError("service is stopped")
        self._timer_task = asyncio.get_running_loop().create_task(
            self._timer_loop(), name="repro-service-ticks"
        )

    async def _timer_loop(self) -> None:
        while True:
            await self.tick_burst()
            await asyncio.sleep(self.tick_interval)

    async def stop(self) -> None:
        """Stop ticking, flush queued requests as ``SHUTDOWN``, free threads.

        Idempotent; after ``stop()`` the service refuses new submissions.
        """
        if self._timer_task is not None:
            self._timer_task.cancel()
            try:
                await self._timer_task
            except asyncio.CancelledError:
                pass
            self._timer_task = None
        if not self._closed:
            self._closed = True
            for shard in self.shards:
                if self.durability is not None and shard.queue.depth:
                    self.durability.journal(shard.output_fiber).dequeue(
                        self._slot, shard.queue.depth
                    )
                for p in shard.queue.drain():
                    self._resolve_rejected(p, RejectReason.SHUTDOWN)
                shard.update_depth_gauge()
            if self.durability is not None:
                self.durability.close()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="repro-service"
            )
        return self._pool
