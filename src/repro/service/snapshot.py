"""Periodic shard snapshots: the journal's compaction anchor.

A :class:`ShardSnapshot` captures everything a shard needs to resume —
the cross-slot ``busy[]`` residuals, the tick the state is valid
*entering*, the queued request tuples, and the grant policy's RNG state —
so recovery is ``latest valid snapshot + deterministic journal replay``
instead of an unbounded replay from tick 0.

Encoding is a single CRC-guarded blob::

    magic "RSNP" | version u16 | body length u32 | CRC32(body) u32 | body
    body = shard i64 | tick i64 | k u32 | n_queue u32 | policy_len u32
           | busy (k × i64) | queue (n_queue × 6 i64) | policy JSON bytes

Version history: v1 queue entries were 5 ints (no tenant); v2 appends the
tenant as a sixth.  The decoder reads both — v1 entries surface widened
to the 6-int form with tenant 0, so pre-tenant snapshot files recover on
current code.

Corruption anywhere raises :class:`~repro.errors.DurabilityError` on
decode; stores therefore *skip* invalid snapshots when asked for the
latest one (a half-written snapshot must never beat an older valid one).
The file store additionally writes via temp-file + :func:`os.replace`, so
a crash mid-snapshot leaves no partially visible file at the final name.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path

from repro.errors import DurabilityError, InvalidParameterError

__all__ = [
    "ShardSnapshot",
    "encode_snapshot",
    "decode_snapshot",
    "SnapshotStore",
    "MemorySnapshotStore",
    "FileSnapshotStore",
]

_MAGIC = b"RSNP"
_VERSION = 2
#: Queue-entry width (i64s) per snapshot version (v1 predates tenants).
_ENTRY_WIDTH = {1: 5, 2: 6}
_PREFIX = struct.Struct("!4sHII")  # magic, version, body length, CRC32(body)
_BODY_HEAD = struct.Struct("!qqIII")  # shard, tick, k, n_queue, policy_len


@dataclass(frozen=True, slots=True)
class ShardSnapshot:
    """One shard's full durable state entering ``tick``.

    ``queue`` holds request 6-tuples (input, wavelength, output, duration,
    priority, tenant) in FIFO order; ``policy_state`` is the grant policy's
    JSON-encodable export (``None`` for stateless policies).  Deadlines and
    submit timestamps are deliberately *not* durable: they are wall-clock
    quantities that do not survive a process, and the idempotency contract
    (``docs/SERVICE.md``) covers the callers they belonged to.
    """

    shard: int
    tick: int
    busy: tuple[int, ...]
    queue: tuple[tuple[int, int, int, int, int, int], ...] = ()
    policy_state: object | None = None


def encode_snapshot(snapshot: ShardSnapshot) -> bytes:
    """Serialize with magic, version, length, and CRC."""
    k = len(snapshot.busy)
    policy = json.dumps(snapshot.policy_state).encode("utf-8")
    body = _BODY_HEAD.pack(
        snapshot.shard, snapshot.tick, k, len(snapshot.queue), len(policy)
    )
    if k:
        body += struct.pack(f"!{k}q", *snapshot.busy)
    for entry in snapshot.queue:
        if len(entry) == 5:  # pre-tenant caller: widen to the v2 form
            entry = tuple(entry) + (0,)
        body += struct.pack("!6q", *entry)
    body += policy
    return _PREFIX.pack(_MAGIC, _VERSION, len(body), zlib.crc32(body)) + body


def decode_snapshot(data: bytes) -> ShardSnapshot:
    """Inverse of :func:`encode_snapshot`; raises
    :class:`~repro.errors.DurabilityError` on any corruption."""
    try:
        magic, version, length, crc = _PREFIX.unpack_from(data)
    except struct.error as exc:
        raise DurabilityError(f"snapshot too short: {len(data)} bytes") from exc
    if magic != _MAGIC:
        raise DurabilityError(f"bad snapshot magic {magic!r}")
    entry_width = _ENTRY_WIDTH.get(version)
    if entry_width is None:
        raise DurabilityError(f"unsupported snapshot version {version}")
    body = data[_PREFIX.size : _PREFIX.size + length]
    if len(body) != length or zlib.crc32(body) != crc:
        raise DurabilityError("snapshot body truncated or CRC mismatch")
    try:
        shard, tick, k, n_queue, policy_len = _BODY_HEAD.unpack_from(body)
        off = _BODY_HEAD.size
        busy = struct.unpack_from(f"!{k}q", body, off) if k else ()
        off += 8 * k
        queue = []
        entry_struct = struct.Struct(f"!{entry_width}q")
        for _ in range(n_queue):
            entry = entry_struct.unpack_from(body, off)
            if entry_width == 5:  # v1: widen to the tenant-carrying form
                entry = entry + (0,)
            queue.append(entry)
            off += entry_struct.size
        policy_bytes = body[off : off + policy_len]
        if len(policy_bytes) != policy_len:
            raise DurabilityError("snapshot policy state truncated")
        policy_state = json.loads(policy_bytes.decode("utf-8"))
    except (struct.error, ValueError) as exc:
        raise DurabilityError(f"snapshot body undecodable: {exc}") from exc
    return ShardSnapshot(shard, tick, tuple(busy), tuple(queue), policy_state)


# -- stores ------------------------------------------------------------------


class SnapshotStore(ABC):
    """Keeps the encoded snapshots per shard.

    Both stores keep *encoded* bytes and decode on read — the codec (and
    its corruption detection) is exercised on every recovery, not just in
    codec unit tests.
    """

    @abstractmethod
    def save(self, snapshot: ShardSnapshot) -> None: ...

    @abstractmethod
    def latest(self, shard: int) -> ShardSnapshot | None:
        """Newest snapshot for ``shard`` that decodes cleanly (corrupt
        ones are skipped, falling back to older snapshots)."""

    @abstractmethod
    def ticks(self, shard: int) -> tuple[int, ...]:
        """Ticks of the retained snapshots for ``shard``, ascending."""

    @abstractmethod
    def prune(self, shard: int, retain: int) -> None:
        """Keep only the newest ``retain`` snapshots for ``shard``."""

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class MemorySnapshotStore(SnapshotStore):
    """Dict-of-bytes store (default; pairs with :class:`MemoryJournal`)."""

    def __init__(self) -> None:
        self._blobs: dict[int, list[tuple[int, bytes]]] = {}

    def save(self, snapshot: ShardSnapshot) -> None:
        blobs = self._blobs.setdefault(snapshot.shard, [])
        blobs.append((snapshot.tick, encode_snapshot(snapshot)))
        blobs.sort(key=lambda entry: entry[0])

    def latest(self, shard: int) -> ShardSnapshot | None:
        for _tick, blob in reversed(self._blobs.get(shard, [])):
            try:
                return decode_snapshot(blob)
            except DurabilityError:
                continue
        return None

    def ticks(self, shard: int) -> tuple[int, ...]:
        return tuple(t for t, _ in self._blobs.get(shard, []))

    def prune(self, shard: int, retain: int) -> None:
        blobs = self._blobs.get(shard)
        if blobs is not None and len(blobs) > retain:
            del blobs[: len(blobs) - retain]


class FileSnapshotStore(SnapshotStore):
    """One file per snapshot: ``shard-SSSS.tick-TTTTTTTTTTTT.snap``.

    Writes go to a temp file first and are moved into place atomically, so
    ``latest`` never sees a half-written snapshot at a final name — and if
    it somehow did (torn disk), the CRC check skips it.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, shard: int, tick: int) -> Path:
        return self.directory / f"shard-{shard:04d}.tick-{tick:012d}.snap"

    def _paths(self, shard: int) -> list[Path]:
        return sorted(self.directory.glob(f"shard-{shard:04d}.tick-*.snap"))

    def save(self, snapshot: ShardSnapshot) -> None:
        final = self._path(snapshot.shard, snapshot.tick)
        tmp = final.with_suffix(".tmp")
        tmp.write_bytes(encode_snapshot(snapshot))
        os.replace(tmp, final)

    def latest(self, shard: int) -> ShardSnapshot | None:
        for path in reversed(self._paths(shard)):
            try:
                return decode_snapshot(path.read_bytes())
            except (DurabilityError, OSError):
                continue
        return None

    def ticks(self, shard: int) -> tuple[int, ...]:
        ticks = []
        for path in self._paths(shard):
            try:
                ticks.append(int(path.stem.rsplit("tick-", 1)[1]))
            except (IndexError, ValueError):
                continue
        return tuple(ticks)

    def prune(self, shard: int, retain: int) -> None:
        if retain < 0:
            raise InvalidParameterError(f"retain must be >= 0, got {retain}")
        paths = self._paths(shard)
        for path in paths[: max(0, len(paths) - retain)]:
            path.unlink(missing_ok=True)
