"""The submission edge: futures, deduplication, rejection accounting.

This is the transport-facing layer of the service, split out of
``server.py`` so every front door — direct asyncio calls
(:class:`~repro.service.server.SchedulingService`), the TCP server
(:mod:`repro.net.server`), the multi-process parent
(:mod:`repro.net.procservice`) — shares one implementation of the edge
semantics:

* a :class:`PendingRequest` envelope per in-flight submission,
* the bounded request-id dedup table (exactly-once grants: a granted id
  replays its grant, an in-flight id answers ``DUPLICATE``, a rejected id
  is released),
* resolution helpers that settle the dedup table and bump the per-reason
  telemetry counters in one place.

The edge never touches shard state; it only turns outcomes into resolved
futures and counts.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.service.telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.distributed import SlotRequest
    from repro.service.server import Rejected, RejectReason, ServiceGrant

__all__ = ["PendingRequest", "SubmissionEdge"]


class PendingRequest:
    """Envelope for one in-flight submission: request + future + deadline
    + submit timestamp (+ the caller's idempotency key when dedup is on).

    Two deadline flavors coexist: ``deadline`` is a wall-clock event-loop
    time (legacy ``timeout`` seconds), ``deadline_slot`` is a slot index —
    the request expires ``TIMED_OUT`` when a tick drains it at
    ``slot >= deadline_slot``.  Slot deadlines are the deterministic form
    the wire protocol's ``timeout_ticks`` maps to: they advance with the
    logical clock, not the wall, so a replayed schedule expires the same
    requests at the same slots every run.
    """

    __slots__ = (
        "request",
        "future",
        "deadline",
        "deadline_slot",
        "submitted_at",
        "request_id",
    )

    def __init__(
        self,
        request: "SlotRequest",
        future: "asyncio.Future[ServiceGrant | Rejected]",
        deadline: float | None,
        submitted_at: float,
        request_id: str | None = None,
        deadline_slot: int | None = None,
    ) -> None:
        self.request = request
        self.future = future
        self.deadline = deadline
        self.deadline_slot = deadline_slot
        self.submitted_at = submitted_at
        self.request_id = request_id


class _DedupEntry:
    """Dedup-table slot: ``outcome`` is None while the original is in
    flight, then the original :class:`ServiceGrant` (rejections release
    the id instead of settling it)."""

    __slots__ = ("outcome",)

    def __init__(self) -> None:
        self.outcome: "ServiceGrant | None" = None


class SubmissionEdge:
    """Shared submission-edge state machine (see module docstring).

    The owning service calls :meth:`check_duplicate` before enqueueing,
    :meth:`resolve` / :meth:`resolve_rejected` to settle outcomes.
    Counter names are the stable ``server.*`` telemetry contract.
    """

    def __init__(self, telemetry: Telemetry, *, dedup_capacity: int = 0) -> None:
        self.telemetry = telemetry
        self._dedup: "OrderedDict[str, _DedupEntry] | None" = (
            OrderedDict() if dedup_capacity > 0 else None
        )
        self._dedup_capacity = dedup_capacity

        t = telemetry
        self.c_submitted = t.counter("server.submitted")
        self.c_granted = t.counter("server.granted")
        self._c_duplicate = t.counter("server.duplicate")
        # Deferred import to break the server<->edge cycle.
        from repro.service.server import RejectReason

        self._reason_counters = {
            RejectReason.CONTENTION: t.counter("server.rejected.contention"),
            RejectReason.SOURCE_BLOCKED: t.counter(
                "server.rejected.source_blocked"
            ),
            RejectReason.QUEUE_FULL: t.counter("server.rejected.queue_full"),
            RejectReason.DROPPED: t.counter("server.dropped"),
            RejectReason.TIMED_OUT: t.counter("server.timed_out"),
            RejectReason.SHUTDOWN: t.counter("server.shutdown"),
            RejectReason.SHARD_DOWN: t.counter("server.rejected.shard_down"),
            RejectReason.CIRCUIT_OPEN: t.counter(
                "server.rejected.circuit_open"
            ),
            RejectReason.DUPLICATE: self._c_duplicate,
            RejectReason.ADMISSION_SHED: t.counter(
                "server.rejected.admission_shed"
            ),
            RejectReason.RATE_LIMITED: t.counter(
                "server.rejected.rate_limited"
            ),
            RejectReason.UNAVAILABLE: t.counter(
                "server.rejected.unavailable"
            ),
        }
        # Per-tenant accounting, materialized lazily (the single-tenant
        # fast path never pays for tenants it has not seen).  Names are
        # the ``tenant.<id>.*`` telemetry contract the QoS drills and
        # docs/SERVICE.md rely on.
        self._tenant_submitted: dict[int, object] = {}
        self._tenant_granted: dict[int, object] = {}
        self._tenant_rejected: dict[tuple[int, "RejectReason"], object] = {}

    # -- per-tenant accounting ----------------------------------------------

    def note_submitted(self, request: "SlotRequest") -> None:
        """Count one accepted-for-processing submission (all front doors
        call this instead of bumping ``c_submitted`` directly, so the
        per-tenant ledger stays consistent with the aggregate)."""
        self.c_submitted.inc()
        tenant = request.tenant
        c = self._tenant_submitted.get(tenant)
        if c is None:
            c = self._tenant_submitted[tenant] = self.telemetry.counter(
                f"tenant.{tenant}.submitted"
            )
        c.inc()

    def note_granted(self, request: "SlotRequest") -> None:
        """Count one grant (aggregate + per-tenant)."""
        self.c_granted.inc()
        tenant = request.tenant
        c = self._tenant_granted.get(tenant)
        if c is None:
            c = self._tenant_granted[tenant] = self.telemetry.counter(
                f"tenant.{tenant}.granted"
            )
        c.inc()

    @property
    def dedup_enabled(self) -> bool:
        return self._dedup is not None

    # -- deduplication ------------------------------------------------------

    def check_duplicate(
        self,
        request: "SlotRequest",
        request_id: str | None,
        future: "asyncio.Future[ServiceGrant | Rejected]",
        slot: int,
    ) -> str | None:
        """Apply the exactly-once admission rule for ``request_id``.

        A known *granted* id resolves ``future`` with the original grant;
        a known in-flight id resolves it ``DUPLICATE``; in both cases the
        return is ``None`` (the caller must not enqueue).  A fresh id is
        registered (evicting the oldest past capacity) and returned so the
        caller threads it through the :class:`PendingRequest`.  When dedup
        is off every id degrades to ``None`` (ignored).
        """
        if self._dedup is None or request_id is None:
            return None
        entry = self._dedup.get(request_id)
        if entry is not None:
            from repro.service.server import Rejected, RejectReason

            self.note_submitted(request)
            self._c_duplicate.inc()
            key = (request.tenant, RejectReason.DUPLICATE)
            c = self._tenant_rejected.get(key)
            if c is None:
                c = self._tenant_rejected[key] = self.telemetry.counter(
                    f"tenant.{request.tenant}.rejected.duplicate"
                )
            c.inc()
            if entry.outcome is not None:
                future.set_result(entry.outcome)
            else:
                future.set_result(
                    Rejected(request, RejectReason.DUPLICATE, slot)
                )
            return None
        self._dedup[request_id] = _DedupEntry()
        while len(self._dedup) > self._dedup_capacity:
            self._dedup.popitem(last=False)
        return request_id

    def _settle_dedup(
        self, pending: PendingRequest, outcome: "ServiceGrant | Rejected"
    ) -> None:
        """Record a granted original for replay; release a rejected one
        (its caller's retry must be a fresh attempt, not a DUPLICATE)."""
        if pending.request_id is None or self._dedup is None:
            return
        entry = self._dedup.get(pending.request_id)
        if entry is None:  # evicted by the capacity bound
            return
        from repro.service.server import ServiceGrant

        if isinstance(outcome, ServiceGrant):
            entry.outcome = outcome
        else:
            del self._dedup[pending.request_id]

    # -- resolution ---------------------------------------------------------

    def resolve(
        self, pending: PendingRequest, outcome: "ServiceGrant | Rejected"
    ) -> None:
        self._settle_dedup(pending, outcome)
        if not pending.future.done():
            pending.future.set_result(outcome)

    def resolve_rejected(
        self,
        pending: PendingRequest,
        reason: "RejectReason",
        slot: int | None = None,
    ) -> None:
        from repro.service.server import Rejected

        self._reason_counters[reason].inc()
        tenant = pending.request.tenant
        key = (tenant, reason)
        c = self._tenant_rejected.get(key)
        if c is None:
            c = self._tenant_rejected[key] = self.telemetry.counter(
                f"tenant.{tenant}.rejected.{reason.value}"
            )
        c.inc()
        self.resolve(pending, Rejected(pending.request, reason, slot))
