"""Per-tenant token-bucket rate limiting at the submission edge.

Migration and autoscaling (``docs/ROBUSTNESS.md``) keep the service alive
under shifting load, but a single hot tenant can still starve the tick
budget before admission control ever sees a queue.  This module puts the
classic token bucket at the front door: each tenant holds a bucket of
``burst`` tokens refilled by ``rate_per_tick`` tokens at every slot tick,
and a submission that finds the bucket empty is resolved immediately with
:data:`~repro.service.server.RejectReason.RATE_LIMITED` — it never touches
a queue, a shard, or the journal.

Determinism: refill is driven by the tick loop (:meth:`TokenBucketLimiter
.advance` is called once per slot), never by wall-clock time, and token
arithmetic uses :class:`fractions.Fraction`, so two seeded runs make
bit-identical admit/limit decisions.  That is what lets the migration
drill compare a rate-limited run against its unmigrated reference
grant-for-grant.

The ``RATE_LIMITED`` outcome participates in the conservation invariant
(:mod:`repro.service.telemetry`) both in aggregate and per tenant, exactly
like every other reject reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Mapping

from repro.errors import InvalidParameterError

__all__ = ["RateLimitConfig", "TokenBucketLimiter"]

_RateLike = "int | float | str | Fraction"


def _as_fraction(value, what: str, minimum: Fraction) -> Fraction:
    try:
        f = Fraction(value)
    except (TypeError, ValueError, ZeroDivisionError) as exc:
        raise InvalidParameterError(f"{what} must be numeric, got {value!r}") from exc
    if f < minimum:
        raise InvalidParameterError(f"{what} must be >= {minimum}, got {value!r}")
    return f


@dataclass(frozen=True)
class RateLimitConfig:
    """Token-bucket parameters: a default and optional per-tenant overrides.

    ``rate_per_tick`` tokens are added to each bucket at every slot tick
    (fractional rates are exact — ``Fraction(1, 3)`` admits one request
    every three ticks); ``burst`` caps the bucket, bounding how many
    back-to-back submissions a briefly idle tenant may land in one tick.
    ``per_tenant`` maps tenant ids to ``(rate_per_tick, burst)`` pairs for
    tenants whose contract differs from the default.
    """

    rate_per_tick: "int | float | str | Fraction" = 1
    burst: "int | float | str | Fraction" = 1
    per_tenant: Mapping[int, tuple] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _as_fraction(self.rate_per_tick, "rate_per_tick", Fraction(0))
        _as_fraction(self.burst, "burst", Fraction(1))
        for tenant, pair in self.per_tenant.items():
            if len(pair) != 2:
                raise InvalidParameterError(
                    f"per_tenant[{tenant}] must be (rate_per_tick, burst), "
                    f"got {pair!r}"
                )
            _as_fraction(pair[0], f"per_tenant[{tenant}] rate_per_tick", Fraction(0))
            _as_fraction(pair[1], f"per_tenant[{tenant}] burst", Fraction(1))

    def limits_for(self, tenant: int) -> tuple[Fraction, Fraction]:
        """Effective ``(rate_per_tick, burst)`` for ``tenant``."""
        pair = self.per_tenant.get(tenant)
        if pair is not None:
            return Fraction(pair[0]), Fraction(pair[1])
        return Fraction(self.rate_per_tick), Fraction(self.burst)


class TokenBucketLimiter:
    """Tick-driven per-tenant token buckets.

    The server calls :meth:`allow` once per submission (before queueing)
    and :meth:`advance` once per slot tick (after scheduling), so the
    admit/limit sequence is a pure function of the submission order and
    the config — no clocks involved.
    """

    def __init__(self, config: RateLimitConfig, telemetry=None) -> None:
        if not isinstance(config, RateLimitConfig):
            raise InvalidParameterError(
                f"config must be a RateLimitConfig, got {type(config).__name__}"
            )
        self.config = config
        # tenant -> [tokens, rate, burst]; buckets start full so a fresh
        # tenant gets its contractual burst immediately.
        self._buckets: dict[int, list[Fraction]] = {}
        if telemetry is not None:
            self._c_allowed = telemetry.counter("server.rate_limiter.allowed")
            self._c_limited = telemetry.counter("server.rate_limiter.limited")
        else:
            self._c_allowed = self._c_limited = None

    def _bucket(self, tenant: int) -> list[Fraction]:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            rate, burst = self.config.limits_for(tenant)
            bucket = self._buckets[tenant] = [burst, rate, burst]
        return bucket

    def allow(self, tenant: int) -> bool:
        """Spend one token from ``tenant``'s bucket; False when empty."""
        bucket = self._bucket(int(tenant))
        if bucket[0] >= 1:
            bucket[0] -= 1
            if self._c_allowed is not None:
                self._c_allowed.inc()
            return True
        if self._c_limited is not None:
            self._c_limited.inc()
        return False

    def advance(self) -> None:
        """Refill every live bucket by its per-tick rate (tick boundary)."""
        for bucket in self._buckets.values():
            bucket[0] = min(bucket[2], bucket[0] + bucket[1])

    def tokens(self, tenant: int) -> Fraction:
        """Current token balance (tests / introspection)."""
        return self._bucket(int(tenant))[0]
