"""Elastic autoscaling over the live-migration engine.

The migration engine (:mod:`repro.service.resharding`) makes shard
ownership a runtime decision; this module supplies the *policy* that
exercises it: an :class:`Autoscaler` that watches per-worker queue depth
once per tick and reacts to sustained pressure with one of three moves —

* **split** — a worker has been hot for ``hysteresis_ticks`` straight
  observations and the fleet is below ``max_workers``: spawn a fresh
  worker and live-migrate the deeper half of the hot worker's shards
  onto it.
* **relocate** — same hot streak but the fleet is already at
  ``max_workers``: move the hot worker's deepest shard to the
  least-loaded other worker.
* **merge** — *every* worker has been cold for the streak and the fleet
  is above ``min_workers``: drain the least-loaded worker onto the rest
  and retire it.

Two dampers keep it from flapping: the hysteresis streak (one noisy tick
never triggers anything) and a ``cooldown_ticks`` refractory period after
every action (migrations pause ticks; back-to-back moves would stack the
pauses the autoscaler exists to relieve).

Determinism: decisions are a pure function of the observed depth
sequence and the config — ties break toward the lowest worker/shard id
(except merge's victim, which prefers the *highest* id so scale-in
unwinds scale-out) — so a seeded drill autoscales identically on every
run, which is what lets the migration drill compare grants against an
unmigrated reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import InvalidParameterError
from repro.util.validation import check_positive_int

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.resharding import MigrationReport

__all__ = ["Autoscaler", "AutoscalerConfig", "ScaleDecision"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Watermarks and dampers for :class:`Autoscaler`.

    ``high_watermark``/``low_watermark`` are per-worker queued-request
    thresholds; a worker above the high mark is *hot*, a fleet entirely
    below the low mark is *cold*.  A condition must persist for
    ``hysteresis_ticks`` consecutive observations to trigger, and after
    any action the autoscaler sleeps for ``cooldown_ticks`` observations.
    ``min_workers``/``max_workers`` bound the fleet.
    """

    high_watermark: int = 64
    low_watermark: int = 8
    hysteresis_ticks: int = 3
    cooldown_ticks: int = 10
    min_workers: int = 1
    max_workers: int = 8

    def __post_init__(self) -> None:
        check_positive_int(self.high_watermark, "high_watermark")
        if not 0 <= self.low_watermark < self.high_watermark:
            raise InvalidParameterError(
                f"need 0 <= low_watermark < high_watermark, got "
                f"{self.low_watermark} / {self.high_watermark}"
            )
        check_positive_int(self.hysteresis_ticks, "hysteresis_ticks")
        if self.cooldown_ticks < 0:
            raise InvalidParameterError(
                f"cooldown_ticks must be >= 0, got {self.cooldown_ticks}"
            )
        check_positive_int(self.min_workers, "min_workers")
        if self.max_workers < self.min_workers:
            raise InvalidParameterError(
                f"need max_workers >= min_workers, got "
                f"{self.max_workers} < {self.min_workers}"
            )


@dataclass(frozen=True)
class ScaleDecision:
    """One executed autoscaling action.

    ``action`` is ``"split"``, ``"merge"``, or ``"relocate"``; ``worker``
    is the hot worker (split/relocate) or the retired worker (merge);
    ``new_worker`` is the spawned id on a split; ``reports`` are the
    live migrations the action performed, in execution order.
    """

    action: str
    worker: int
    reports: "tuple[MigrationReport, ...]"
    new_worker: int | None = None


class Autoscaler:
    """Queue-depth-driven split/merge/relocate policy for a sharded
    service.

    ``service`` needs the elasticity surface of
    :class:`~repro.net.procservice.ProcessShardedService`:
    ``active_workers()``, ``worker_queue_depth(w)``, ``queues`` (indexed
    by shard), ``pool.shards_of(w)``, ``add_worker()``,
    ``remove_worker(w)``, ``migrate_shard(o, w)``, and ``rebalance()``.
    Call :meth:`observe` once per tick boundary (never mid-tick); it
    returns the :class:`ScaleDecision` it executed, or ``None``.
    """

    def __init__(
        self,
        service,
        config: AutoscalerConfig | None = None,
        telemetry=None,
    ) -> None:
        self.service = service
        self.config = config if config is not None else AutoscalerConfig()
        t = telemetry if telemetry is not None else service.telemetry
        self._c_observations = t.counter("autoscaler.observations")
        self._c_splits = t.counter("autoscaler.splits")
        self._c_merges = t.counter("autoscaler.merges")
        self._c_relocations = t.counter("autoscaler.relocations")
        self._hot_streak = 0
        self._cold_streak = 0
        self._cooldown = 0
        self.decisions: list[ScaleDecision] = []

    # -- signal --------------------------------------------------------------

    def depths(self) -> dict[int, int]:
        """Per-active-worker queued-request depth, the hotspot signal."""
        return {
            w: self.service.worker_queue_depth(w)
            for w in self.service.active_workers()
        }

    def _hottest(self, depths: dict[int, int]) -> int:
        return max(sorted(depths), key=lambda w: depths[w])

    # -- the per-tick observation -------------------------------------------

    def observe(self) -> ScaleDecision | None:
        """Account one tick's depths; execute at most one action."""
        self._c_observations.inc()
        cfg = self.config
        depths = self.depths()
        hot = max(depths.values()) > cfg.high_watermark
        cold = max(depths.values()) < cfg.low_watermark
        self._hot_streak = self._hot_streak + 1 if hot else 0
        self._cold_streak = self._cold_streak + 1 if cold else 0
        if self._cooldown > 0:
            self._cooldown -= 1
            return None
        decision: ScaleDecision | None = None
        if self._hot_streak >= cfg.hysteresis_ticks:
            decision = self._scale_out(depths)
        elif self._cold_streak >= cfg.hysteresis_ticks:
            decision = self._scale_in(depths)
        if decision is not None:
            self._hot_streak = self._cold_streak = 0
            self._cooldown = cfg.cooldown_ticks
            self.decisions.append(decision)
        return decision

    # -- actions -------------------------------------------------------------

    def _shard_depth(self, o: int) -> int:
        return self.service.queues[o].depth

    def _scale_out(self, depths: dict[int, int]) -> ScaleDecision | None:
        hottest = self._hottest(depths)
        owned = self.service.pool.shards_of(hottest)
        if len(owned) < 2:
            # One shard is an indivisible hotspot; relocating it to an
            # equally loaded worker would only move the problem.
            return None
        if len(depths) < self.config.max_workers:
            new = self.service.add_worker()
            # Deeper half first so the split actually halves the load;
            # ties (and the all-idle case) break by shard id.
            ranked = sorted(owned, key=lambda o: (-self._shard_depth(o), o))
            moving = sorted(ranked[: len(owned) // 2])
            from repro.service.resharding import ShardMove

            reports = self.service.rebalance(
                moves=[
                    ShardMove(shard=o, source=hottest, destination=new)
                    for o in moving
                ]
            )
            self._c_splits.inc()
            return ScaleDecision(
                "split", hottest, tuple(reports), new_worker=new
            )
        # Fleet at max: shed the deepest shard to the coldest other worker.
        coldest = min(
            (w for w in sorted(depths) if w != hottest),
            key=lambda w: depths[w],
            default=None,
        )
        if coldest is None or depths[coldest] >= depths[hottest]:
            return None
        victim = min(owned, key=lambda o: (-self._shard_depth(o), o))
        report = self.service.migrate_shard(victim, coldest)
        self._c_relocations.inc()
        return ScaleDecision("relocate", hottest, (report,))

    def _scale_in(self, depths: dict[int, int]) -> ScaleDecision | None:
        if len(depths) <= self.config.min_workers:
            return None
        # Retire the least-loaded worker; ties prefer the highest id so
        # scale-in unwinds scale-out (last spawned, first retired).
        victim = min(sorted(depths, reverse=True), key=lambda w: depths[w])
        reports = self.service.remove_worker(victim)
        self._c_merges.inc()
        return ScaleDecision("merge", victim, tuple(reports))
