"""The multi-process scheduling service: shards in worker processes.

:class:`ProcessShardedService` keeps the *same* tick semantics as the
in-process :class:`~repro.service.server.SchedulingService` — same
bounded queues, same submission edge (dedup, counters), same input-side
admission state machine (:mod:`repro.service.tickloop`), same FIFO /
fiber-order discipline — but runs step 3 (per-output scheduling) and
step 5 (channel-clock advance) inside OS worker processes chosen by
consistent-hash placement (:mod:`repro.net.procpool`).

Because the per-output decision is a pure function of (scheme,
scheduler, stateless policy, requests, busy[]) — the paper's
decomposition — moving it across a process boundary cannot change any
grant: the slot-by-slot equivalence gate against
:class:`~repro.sim.engine.SlottedSimulator` holds bit-identically, and
``tests/test_net_equivalence.py`` enforces it, kills included.

What the parent keeps in-process: queues (requests not yet drained),
futures, dedup, admission.  What each worker owns: its shards'
``busy[]`` clocks and their write-ahead journals (its own directory).
A killed worker is respawned by the pool, rebuilds ``busy[]`` by journal
replay, and the in-flight tick is re-delivered idempotently — grants a
dead worker had already journaled are replayed from the journal, never
re-scheduled.

Statefulness rule: the grant policy must be **stateless**
(``export_state() is None``, e.g. the default
:class:`~repro.core.policies.FixedPriorityPolicy`) — the same caveat as
the in-process THREADS mode, because shards on different workers cannot
share one mutating policy object.
"""

from __future__ import annotations

import asyncio
import os
import time
from typing import TYPE_CHECKING

from repro.core.distributed import SlotRequest, validate_slot_request
from repro.core.policies import FixedPriorityPolicy, GrantPolicy
from repro.errors import InvalidParameterError, SimulationError
from repro.net.procpool import ProcessShardPool, request_wire_tuple
from repro.service.edge import PendingRequest, SubmissionEdge
from repro.service.queue import BoundedQueue, OverflowPolicy, TenantAdmission
from repro.service.server import Rejected, RejectReason, ServiceGrant
from repro.service.telemetry import Telemetry
from repro.service.tickloop import InputAdmission
from repro.util.validation import check_positive_int

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.base import Scheduler
    from repro.graphs.conversion import ConversionScheme

__all__ = ["ProcessShardedService"]


class ProcessShardedService:
    """Sharded scheduling service with multi-process shard placement.

    The submission/tick surface mirrors
    :class:`~repro.service.server.SchedulingService` (``submit_nowait`` /
    ``submit`` / ``tick`` / ``run_ticks`` / ``drain`` / ``stop``), so the
    TCP front door (:class:`repro.net.server.NetServer`) serves either
    backend unchanged.
    """

    def __init__(
        self,
        n_fibers: int,
        scheme: "ConversionScheme",
        scheduler: "Scheduler",
        *,
        policy: GrantPolicy | None = None,
        n_workers: int = 2,
        journal_dir: str | os.PathLike | None = None,
        queue_capacity: int | None = None,
        overflow: OverflowPolicy = OverflowPolicy.REJECT,
        admission: "TenantAdmission | None" = None,
        max_batch_per_tick: int | None = None,
        tick_interval: float = 0.001,
        dedup_capacity: int = 0,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.n_fibers = check_positive_int(n_fibers, "n_fibers")
        self.scheme = scheme
        self.policy = policy if policy is not None else FixedPriorityPolicy()
        if not self.policy.state_partitioned_by_output:
            raise InvalidParameterError(
                "multi-process placement needs a grant policy whose state "
                "partitions by output fiber (state_partitioned_by_output) — "
                "shards on different workers cannot share one mutating "
                "policy object whose state crosses outputs; use "
                "FixedPriorityPolicy, RoundRobinPolicy, or WeightedFairPolicy"
            )
        if max_batch_per_tick is not None:
            check_positive_int(max_batch_per_tick, "max_batch_per_tick")
        if tick_interval < 0:
            raise InvalidParameterError(
                f"tick_interval must be >= 0, got {tick_interval}"
            )
        self.max_batch_per_tick = max_batch_per_tick
        self.tick_interval = float(tick_interval)
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.edge = SubmissionEdge(self.telemetry, dedup_capacity=dedup_capacity)
        self._admission = InputAdmission(self.n_fibers, scheme.k)
        self.queues = [
            BoundedQueue(queue_capacity, overflow, admission)
            for _ in range(self.n_fibers)
        ]
        self.pool = ProcessShardPool(
            self.n_fibers,
            scheme,
            scheduler,
            self.policy,
            n_workers=n_workers,
            journal_dir=journal_dir,
        )
        self._slot = 0
        self._closed = False
        self._timer_task: "asyncio.Task[None] | None" = None
        self._c_ticks = self.telemetry.counter("server.ticks")
        self._g_slot = self.telemetry.gauge("server.slot")
        self._g_depth = self.telemetry.gauge("server.queue_depth_total")

    # -- introspection -------------------------------------------------------

    @property
    def slot(self) -> int:
        return self._slot

    @property
    def n_workers(self) -> int:
        return self.pool.n_workers

    @property
    def placement(self) -> dict[int, int]:
        """shard → worker-process map (consistent-hash, stable)."""
        return dict(self.pool.placement)

    @property
    def queue_depth_total(self) -> int:
        return sum(q.depth for q in self.queues)

    def worker_busy(self, output_fiber: int) -> list[int]:
        """The owning worker process's live ``busy[]`` for one shard
        (crosses the process boundary; tests and debugging)."""
        owner = self.pool.placement[output_fiber]
        return self.pool.call(owner, "busy")[output_fiber]

    # -- submission ----------------------------------------------------------

    def submit_nowait(
        self,
        request: SlotRequest,
        timeout: float | None = None,
        *,
        request_id: str | None = None,
    ) -> "asyncio.Future[ServiceGrant | Rejected]":
        """Enqueue ``request``; same contract as the in-process service
        (validation, deadline, dedup, overflow policy)."""
        if self._closed:
            raise SimulationError("service is stopped")
        validate_slot_request(request, self.n_fibers, self.scheme.k)
        if timeout is not None and timeout < 0:
            raise InvalidParameterError(f"timeout must be >= 0, got {timeout}")
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[ServiceGrant | Rejected]" = loop.create_future()
        deadline = None if timeout is None else loop.time() + timeout
        if request_id is not None:
            request_id = self.edge.check_duplicate(
                request, request_id, future, self._slot
            )
            if future.done():
                return future
        pending = PendingRequest(
            request, future, deadline, time.perf_counter(), request_id
        )
        self.edge.note_submitted(request)
        queue = self.queues[request.output_fiber]
        shed = queue.policy is OverflowPolicy.SHED
        offer = queue.offer(pending)
        if offer.evicted is not None:
            self.edge.resolve_rejected(
                offer.evicted,
                RejectReason.ADMISSION_SHED if shed else RejectReason.DROPPED,
            )
        if not offer.accepted:
            if shed:
                reason = RejectReason.ADMISSION_SHED
            elif queue.policy is OverflowPolicy.REJECT:
                reason = RejectReason.QUEUE_FULL
            else:
                reason = RejectReason.DROPPED
            self.edge.resolve_rejected(pending, reason)
        return future

    async def submit(
        self, request: SlotRequest, timeout: float | None = None
    ) -> "ServiceGrant | Rejected":
        return await self.submit_nowait(request, timeout)

    # -- one slot tick -------------------------------------------------------

    async def tick(self) -> int:
        """Run one slot tick across the worker processes; returns grants."""
        if self._closed:
            raise SimulationError("service is stopped")
        loop = asyncio.get_running_loop()
        now = loop.time()
        slot = self._slot

        # 1 + 2: drain + admission, shards in fiber order (identical code
        # path to the in-process service: repro/service/tickloop.py).
        work: dict[int, list[PendingRequest]] = {}
        seen_inputs = self._admission.begin_tick()
        for o in range(self.n_fibers):
            drained = self.queues[o].drain(self.max_batch_per_tick)
            survivors, expired, blocked = self._admission.admit(
                drained, now, seen_inputs
            )
            for p in expired:
                self.edge.resolve_rejected(p, RejectReason.TIMED_OUT, slot)
            for p in blocked:
                self.edge.resolve_rejected(p, RejectReason.SOURCE_BLOCKED, slot)
            if survivors:
                work[o] = survivors

        # 3: fan out to the worker processes.  EVERY worker runs the tick
        # (workers advance their owned shards' channel clocks even with no
        # requests this slot — the physical clock never skips).
        payloads: dict[int, list[tuple[int, list[tuple]]]] = {
            w: [] for w in range(self.pool.n_workers)
        }
        for o, survivors in work.items():
            payloads[self.pool.placement[o]].append(
                (o, [request_wire_tuple(p.request) for p in survivors])
            )
        replies = await asyncio.gather(
            *(
                self.pool.call_async(loop, w, "run_tick", slot, payload)
                for w, payload in payloads.items()
            )
        )

        # 4: commit in fiber order (resolution order matches the
        # in-process service, so counters and futures line up exactly).
        by_shard: dict[int, tuple[list, list]] = {}
        for reply in replies:
            for o, grant_tuples, rejected_pairs in reply:
                by_shard[o] = (grant_tuples, rejected_pairs)
        n_granted = 0
        for o in sorted(work):
            survivors = work[o]
            grant_tuples, rejected_pairs = by_shard[o]
            by_input = {
                (p.request.input_fiber, p.request.wavelength): p
                for p in survivors
            }
            for in_f, wl, channel, _dur in grant_tuples:
                p = by_input[(in_f, wl)]
                self._admission.hold(p.request)
                self.edge.note_granted(p.request)
                self.edge.resolve(p, ServiceGrant(p.request, channel, slot))
                n_granted += 1
            for in_f, wl in rejected_pairs:
                self.edge.resolve_rejected(
                    by_input[(in_f, wl)], RejectReason.CONTENTION, slot
                )

        # 5: advance the input-side clock (workers advanced theirs in 3).
        self._admission.decay()
        self._slot += 1
        self._c_ticks.inc()
        self._g_slot.set(self._slot)
        self._g_depth.set(self.queue_depth_total)
        return n_granted

    # -- run modes -----------------------------------------------------------

    async def run_ticks(self, n: int) -> int:
        check_positive_int(n, "n")
        return sum([await self.tick() for _ in range(n)])

    async def drain(self, max_ticks: int = 10_000) -> None:
        ticks = 0
        while self.queue_depth_total > 0:
            if ticks >= max_ticks:
                raise SimulationError(
                    f"queues not drained after {max_ticks} ticks"
                )
            await self.tick()
            ticks += 1

    def start(self) -> None:
        """Run ticks on a background task every ``tick_interval`` seconds."""
        if self._timer_task is not None:
            raise SimulationError("service already started")
        if self._closed:
            raise SimulationError("service is stopped")
        self._timer_task = asyncio.get_running_loop().create_task(
            self._timer_loop(), name="repro-procservice-ticks"
        )

    async def _timer_loop(self) -> None:
        while True:
            await self.tick()
            await asyncio.sleep(self.tick_interval)

    # -- chaos (tests) -------------------------------------------------------

    def kill_worker(self, worker_id: int) -> None:
        """SIGKILL one worker process; the next tick respawns and recovers
        it from its journals (needs ``journal_dir`` for kill durability)."""
        self.pool.kill_worker(worker_id)

    async def stop(self) -> None:
        """Stop ticking, flush queued requests as SHUTDOWN, stop workers."""
        if self._timer_task is not None:
            self._timer_task.cancel()
            try:
                await self._timer_task
            except asyncio.CancelledError:
                pass
            self._timer_task = None
        if not self._closed:
            self._closed = True
            for queue in self.queues:
                for p in queue.drain():
                    self.edge.resolve_rejected(p, RejectReason.SHUTDOWN)
            self.pool.stop()
