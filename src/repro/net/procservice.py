"""The multi-process scheduling service: shards in worker processes.

:class:`ProcessShardedService` keeps the *same* tick semantics as the
in-process :class:`~repro.service.server.SchedulingService` — same
bounded queues, same submission edge (dedup, counters), same input-side
admission state machine (:mod:`repro.service.tickloop`), same FIFO /
fiber-order discipline — but runs step 3 (per-output scheduling) and
step 5 (channel-clock advance) inside OS worker processes chosen by
consistent-hash placement (:mod:`repro.net.procpool`).

Because the per-output decision is a pure function of (scheme,
scheduler, stateless policy, requests, busy[]) — the paper's
decomposition — moving it across a process boundary cannot change any
grant: the slot-by-slot equivalence gate against
:class:`~repro.sim.engine.SlottedSimulator` holds bit-identically, and
``tests/test_net_equivalence.py`` enforces it, kills included.

What the parent keeps in-process: queues (requests not yet drained),
futures, dedup, admission.  What each worker owns: its shards'
``busy[]`` clocks and their write-ahead journals (its own directory).
A killed worker is respawned by the pool, rebuilds ``busy[]`` by journal
replay, and the in-flight tick is re-delivered idempotently — grants a
dead worker had already journaled are replayed from the journal, never
re-scheduled.

Statefulness rule: a policy whose mutable state partitions by output
fiber (``state_partitioned_by_output`` — FixedPriority, RoundRobin,
WeightedFair) runs on per-worker instances and ticks fan out in
parallel.  A policy with *cross-output* state (``RandomPolicy``: one RNG
feeds every output's draws) runs in **stateful mode**: the parent owns
the canonical policy state and threads it through one worker call per
contended shard, in global fiber order — each reply ships the post-draw
state back — so the draw sequence is bit-identical to the in-process
``INLINE`` service and the simulator, at the price of serializing the
contended shards' scheduling.  Crash recovery stays exact in both modes
(see the ``finish_tick`` self-healing note in
:func:`repro.net.procpool.worker_main`).

The shard→worker placement is **live**: the migration engine
(:mod:`repro.service.resharding`, surfaced here as
:meth:`ProcessShardedService.migrate_shard` / :meth:`rebalance`) moves
shards between workers at tick boundaries, and
:meth:`~ProcessShardedService.add_worker` /
:meth:`~ProcessShardedService.remove_worker` grow and shrink the worker
set under the :class:`~repro.service.autoscaler.Autoscaler`.
"""

from __future__ import annotations

import asyncio
import os
import time
from typing import TYPE_CHECKING

from repro.core.distributed import SlotRequest, validate_slot_request
from repro.core.policies import FixedPriorityPolicy, GrantPolicy
from repro.errors import (
    InvalidParameterError,
    SimulationError,
    WorkerProcessError,
)
from repro.net.procpool import ProcessShardPool, request_wire_tuple
from repro.service.breaker import BreakerConfig, CircuitBreaker
from repro.service.edge import PendingRequest, SubmissionEdge
from repro.service.queue import BoundedQueue, OverflowPolicy, TenantAdmission
from repro.service.ratelimit import RateLimitConfig, TokenBucketLimiter
from repro.service.resharding import (
    MigrationReport,
    ShardMigrator,
    ShardMove,
)
from repro.service.server import Rejected, RejectReason, ServiceGrant
from repro.service.telemetry import Telemetry, exponential_buckets
from repro.service.tickloop import InputAdmission
from repro.util.validation import check_positive_int

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.base import Scheduler
    from repro.faults.crashpoints import CrashPoints
    from repro.graphs.conversion import ConversionScheme

#: Tick-duration buckets: 10 µs … ~40 s (mirrors the in-process service).
_TICK_BUCKETS = exponential_buckets(10e-6, 2.0, 22)

__all__ = ["ProcessShardedService"]


class ProcessShardedService:
    """Sharded scheduling service with multi-process shard placement.

    The submission/tick surface mirrors
    :class:`~repro.service.server.SchedulingService` (``submit_nowait`` /
    ``submit`` / ``tick`` / ``run_ticks`` / ``drain`` / ``stop``), so the
    TCP front door (:class:`repro.net.server.NetServer`) serves either
    backend unchanged.
    """

    def __init__(
        self,
        n_fibers: int,
        scheme: "ConversionScheme",
        scheduler: "Scheduler",
        *,
        policy: GrantPolicy | None = None,
        n_workers: int = 2,
        journal_dir: str | os.PathLike | None = None,
        queue_capacity: int | None = None,
        overflow: OverflowPolicy = OverflowPolicy.REJECT,
        admission: "TenantAdmission | None" = None,
        max_batch_per_tick: int | None = None,
        tick_interval: float = 0.001,
        dedup_capacity: int = 0,
        rate_limit: "RateLimitConfig | None" = None,
        breaker: BreakerConfig | None = None,
        telemetry: Telemetry | None = None,
        unresponsive_timeout: float = 30.0,
    ) -> None:
        self.n_fibers = check_positive_int(n_fibers, "n_fibers")
        self.scheme = scheme
        self.policy = policy if policy is not None else FixedPriorityPolicy()
        # Cross-output policy state (RandomPolicy) → stateful mode: the
        # parent owns the canonical state and threads it through one
        # worker call per contended shard in fiber order (see module
        # docstring); partitioned policies fan out in parallel.
        self._stateful = not self.policy.state_partitioned_by_output
        self._policy_state = (
            self.policy.export_state() if self._stateful else None
        )
        if max_batch_per_tick is not None:
            check_positive_int(max_batch_per_tick, "max_batch_per_tick")
        if tick_interval < 0:
            raise InvalidParameterError(
                f"tick_interval must be >= 0, got {tick_interval}"
            )
        self.max_batch_per_tick = max_batch_per_tick
        self.tick_interval = float(tick_interval)
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.edge = SubmissionEdge(self.telemetry, dedup_capacity=dedup_capacity)
        self._admission = InputAdmission(self.n_fibers, scheme.k)
        self.queues = [
            BoundedQueue(queue_capacity, overflow, admission)
            for _ in range(self.n_fibers)
        ]
        self.pool = ProcessShardPool(
            self.n_fibers,
            scheme,
            scheduler,
            self.policy,
            n_workers=n_workers,
            journal_dir=journal_dir,
            unresponsive_timeout=unresponsive_timeout,
            telemetry=self.telemetry,
        )
        # Per-shard breakers fed by connection health: a worker call that
        # exhausts the pool's respawn budget counts a failure against
        # every shard it owns; shards that answer count successes.  An
        # open breaker short-circuits new submissions CIRCUIT_OPEN while
        # queued ones degrade UNAVAILABLE — same three-state machine as
        # the in-process service, driven by the same slot clock.
        self.breakers = (
            [
                CircuitBreaker(breaker, self.telemetry, shard=o)
                for o in range(self.n_fibers)
            ]
            if breaker is not None
            else None
        )
        self._slot = 0
        self._closed = False
        self._timer_task: "asyncio.Task[None] | None" = None
        self.rate_limiter = (
            TokenBucketLimiter(rate_limit, self.telemetry)
            if rate_limit is not None
            else None
        )
        self._migrator = ShardMigrator(self.pool, self.telemetry)
        self._c_ticks = self.telemetry.counter("server.ticks")
        self._g_slot = self.telemetry.gauge("server.slot")
        self._g_depth = self.telemetry.gauge("server.queue_depth_total")
        self._h_tick = self.telemetry.histogram(
            "server.tick_seconds", _TICK_BUCKETS
        )

    # -- introspection -------------------------------------------------------

    @property
    def slot(self) -> int:
        return self._slot

    @property
    def n_workers(self) -> int:
        return self.pool.n_workers

    @property
    def placement(self) -> dict[int, int]:
        """shard → worker-process map (consistent-hash, stable)."""
        return dict(self.pool.placement)

    @property
    def queue_depth_total(self) -> int:
        return sum(q.depth for q in self.queues)

    def worker_busy(self, output_fiber: int) -> list[int]:
        """The owning worker process's live ``busy[]`` for one shard
        (crosses the process boundary; tests and debugging)."""
        owner = self.pool.placement[output_fiber]
        return self.pool.call(owner, "busy")[output_fiber]

    # -- submission ----------------------------------------------------------

    def submit_nowait(
        self,
        request: SlotRequest,
        timeout: float | None = None,
        *,
        timeout_ticks: int | None = None,
        request_id: str | None = None,
    ) -> "asyncio.Future[ServiceGrant | Rejected]":
        """Enqueue ``request``; same contract as the in-process service
        (validation, wall-clock and slot deadlines, dedup, overflow
        policy)."""
        if self._closed:
            raise SimulationError("service is stopped")
        validate_slot_request(request, self.n_fibers, self.scheme.k)
        if timeout is not None and timeout < 0:
            raise InvalidParameterError(f"timeout must be >= 0, got {timeout}")
        if timeout_ticks is not None and timeout_ticks < 0:
            raise InvalidParameterError(
                f"timeout_ticks must be >= 0, got {timeout_ticks}"
            )
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[ServiceGrant | Rejected]" = loop.create_future()
        deadline = None if timeout is None else loop.time() + timeout
        deadline_slot = (
            None if timeout_ticks is None else self._slot + timeout_ticks
        )
        if request_id is not None:
            request_id = self.edge.check_duplicate(
                request, request_id, future, self._slot
            )
            if future.done():
                return future
        pending = PendingRequest(
            request,
            future,
            deadline,
            time.perf_counter(),
            request_id,
            deadline_slot,
        )
        self.edge.note_submitted(request)
        if self.rate_limiter is not None and not self.rate_limiter.allow(
            request.tenant
        ):
            self.edge.resolve_rejected(
                pending, RejectReason.RATE_LIMITED, self._slot
            )
            return future
        if self.breakers is not None and not self.breakers[
            request.output_fiber
        ].allow(self._slot):
            self.edge.resolve_rejected(pending, RejectReason.CIRCUIT_OPEN)
            return future
        queue = self.queues[request.output_fiber]
        shed = queue.policy is OverflowPolicy.SHED
        offer = queue.offer(pending)
        if offer.evicted is not None:
            self.edge.resolve_rejected(
                offer.evicted,
                RejectReason.ADMISSION_SHED if shed else RejectReason.DROPPED,
            )
        if not offer.accepted:
            if shed:
                reason = RejectReason.ADMISSION_SHED
            elif queue.policy is OverflowPolicy.REJECT:
                reason = RejectReason.QUEUE_FULL
            else:
                reason = RejectReason.DROPPED
            self.edge.resolve_rejected(pending, reason)
        return future

    async def submit(
        self, request: SlotRequest, timeout: float | None = None
    ) -> "ServiceGrant | Rejected":
        return await self.submit_nowait(request, timeout)

    # -- one slot tick -------------------------------------------------------

    async def tick(self) -> int:
        """Run one slot tick across the worker processes; returns grants."""
        if self._closed:
            raise SimulationError("service is stopped")
        loop = asyncio.get_running_loop()
        now = loop.time()
        slot = self._slot

        # 1 + 2: drain + admission, shards in fiber order (identical code
        # path to the in-process service: repro/service/tickloop.py).
        work: dict[int, list[PendingRequest]] = {}
        seen_inputs = self._admission.begin_tick()
        for o in range(self.n_fibers):
            drained = self.queues[o].drain(self.max_batch_per_tick)
            survivors, expired, blocked = self._admission.admit(
                drained, now, seen_inputs, slot
            )
            for p in expired:
                self.edge.resolve_rejected(p, RejectReason.TIMED_OUT, slot)
            for p in blocked:
                self.edge.resolve_rejected(p, RejectReason.SOURCE_BLOCKED, slot)
            if survivors:
                work[o] = survivors

        # 3: fan out to the worker processes (every *active* worker runs
        # the tick — workers advance their owned shards' channel clocks
        # even with no requests this slot; the physical clock never
        # skips).  Stateful mode serializes contended shards instead.
        # A worker that stays unreachable through the pool's respawn
        # budget (an edge↔worker partition) degrades gracefully: its
        # shards' requests resolve UNAVAILABLE this tick instead of
        # blowing up the whole tick, its breakers count the failure, and
        # the worker's clocks catch up by journaled ADVANCE replay once
        # it heals (see worker_main's missed-slot catch-up).
        by_shard: dict[int, tuple[list, list]] = {}
        unavailable: set[int] = set()
        if self._stateful:
            # One call per contended shard, global fiber order, policy
            # state threaded through the replies (module docstring).  A
            # failed call leaves the canonical pre-draw state in place,
            # so the next reachable shard draws exactly what it would
            # have drawn had the dead shard never been contended.
            for o in sorted(work):
                wire = [request_wire_tuple(p.request) for p in work[o]]
                try:
                    grant_tuples, rejected_pairs, new_state = (
                        await self.pool.call_async(
                            loop,
                            self.pool.placement[o],
                            "run_shard",
                            slot,
                            o,
                            wire,
                            self._policy_state,
                        )
                    )
                except WorkerProcessError:
                    unavailable.add(o)
                    continue
                self._policy_state = new_state
                by_shard[o] = (grant_tuples, rejected_pairs)
            # End of tick: every active worker advances its shards,
            # carrying the tick's grants for crash self-healing.  An
            # unreachable worker misses its advance and catches up later.
            grants_by_worker: dict[int, dict[int, list]] = {
                w: {} for w in self.pool.active_workers()
            }
            for o, (grant_tuples, _rej) in by_shard.items():
                grants_by_worker[self.pool.placement[o]][o] = grant_tuples
            finish_replies = await asyncio.gather(
                *(
                    self.pool.call_async(loop, w, "finish_tick", slot, grants)
                    for w, grants in grants_by_worker.items()
                ),
                return_exceptions=True,
            )
            for reply in finish_replies:
                if isinstance(reply, BaseException) and not isinstance(
                    reply, WorkerProcessError
                ):
                    raise reply
        else:
            payloads: dict[int, list[tuple[int, list[tuple]]]] = {
                w: [] for w in self.pool.active_workers()
            }
            for o, survivors in work.items():
                payloads[self.pool.placement[o]].append(
                    (o, [request_wire_tuple(p.request) for p in survivors])
                )
            calls = list(payloads.items())
            replies = await asyncio.gather(
                *(
                    self.pool.call_async(loop, w, "run_tick", slot, payload)
                    for w, payload in calls
                ),
                return_exceptions=True,
            )
            for (_w, payload), reply in zip(calls, replies):
                if isinstance(reply, WorkerProcessError):
                    unavailable.update(o for o, _wire in payload)
                    continue
                if isinstance(reply, BaseException):
                    raise reply
                for o, grant_tuples, rejected_pairs in reply:
                    by_shard[o] = (grant_tuples, rejected_pairs)

        # 4: commit in fiber order (resolution order matches the
        # in-process service, so counters and futures line up exactly).
        n_granted = 0
        for o in sorted(work):
            survivors = work[o]
            breaker = self.breakers[o] if self.breakers is not None else None
            if o in unavailable:
                for p in survivors:
                    self.edge.resolve_rejected(
                        p, RejectReason.UNAVAILABLE, slot
                    )
                    if breaker is not None:
                        breaker.record_failure(slot)
                continue
            grant_tuples, rejected_pairs = by_shard[o]
            by_input = {
                (p.request.input_fiber, p.request.wavelength): p
                for p in survivors
            }
            for in_f, wl, channel, _dur in grant_tuples:
                p = by_input[(in_f, wl)]
                self._admission.hold(p.request)
                self.edge.note_granted(p.request)
                self.edge.resolve(p, ServiceGrant(p.request, channel, slot))
                if breaker is not None:
                    breaker.record_success(slot)
                n_granted += 1
            for in_f, wl in rejected_pairs:
                self.edge.resolve_rejected(
                    by_input[(in_f, wl)], RejectReason.CONTENTION, slot
                )
                if breaker is not None:
                    # Losing contention is a healthy outcome — the worker
                    # answered; it counts toward closing, not opening.
                    breaker.record_success(slot)

        # 5: advance the input-side clock (workers advanced theirs in 3).
        self._admission.decay()
        if self.rate_limiter is not None:
            self.rate_limiter.advance()
        self._slot += 1
        self._c_ticks.inc()
        self._g_slot.set(self._slot)
        self._g_depth.set(self.queue_depth_total)
        self._h_tick.observe(loop.time() - now)
        return n_granted

    # -- run modes -----------------------------------------------------------

    async def run_ticks(self, n: int) -> int:
        check_positive_int(n, "n")
        return sum([await self.tick() for _ in range(n)])

    async def drain(self, max_ticks: int = 10_000) -> None:
        ticks = 0
        while self.queue_depth_total > 0:
            if ticks >= max_ticks:
                raise SimulationError(
                    f"queues not drained after {max_ticks} ticks"
                )
            await self.tick()
            ticks += 1

    def start(self) -> None:
        """Run ticks on a background task every ``tick_interval`` seconds."""
        if self._timer_task is not None:
            raise SimulationError("service already started")
        if self._closed:
            raise SimulationError("service is stopped")
        self._timer_task = asyncio.get_running_loop().create_task(
            self._timer_loop(), name="repro-procservice-ticks"
        )

    async def _timer_loop(self) -> None:
        while True:
            await self.tick()
            await asyncio.sleep(self.tick_interval)

    # -- live resharding / elasticity ---------------------------------------

    def active_workers(self) -> list[int]:
        """Ascending ids of workers currently accepting shards."""
        return self.pool.active_workers()

    def worker_queue_depth(self, worker_id: int) -> int:
        """Parent-side queued requests bound for ``worker_id``'s shards
        (the autoscaler's hotspot signal — no cross-process call)."""
        return sum(
            self.queues[o].depth for o in self.pool.shards_of(worker_id)
        )

    def migrate_shard(
        self,
        shard: int,
        destination: int,
        *,
        crashpoints: "CrashPoints | None" = None,
    ) -> MigrationReport:
        """Live-migrate one shard to ``destination`` at this tick boundary.

        Call between ticks (never concurrently with :meth:`tick` — the
        quiesce phase of :mod:`repro.service.resharding` is the tick
        boundary itself).  Blocks until the handoff verifies; the
        placement flip is atomic, so the next tick routes the shard to
        its new owner and redelivered grants replay from the transferred
        journal exactly once.
        """
        return self._migrator.migrate(
            shard, destination, crashpoints=crashpoints
        )

    def rebalance(
        self,
        moves: "list[ShardMove] | None" = None,
        *,
        target: dict[int, int] | None = None,
        crashpoints: "CrashPoints | None" = None,
    ) -> list[MigrationReport]:
        """Run many migrations, planned into conflict-free waves.

        Pass explicit ``moves`` or a ``target`` placement (the engine
        diffs it against the live map).  Same tick-boundary contract as
        :meth:`migrate_shard`.
        """
        if (moves is None) == (target is None):
            raise InvalidParameterError(
                "pass exactly one of moves= or target="
            )
        if target is not None:
            moves = self._migrator.moves_to(target)
        return self._migrator.execute(moves, crashpoints=crashpoints)

    def add_worker(self) -> int:
        """Spawn a fresh, empty worker process; returns its id."""
        return self.pool.add_worker()

    def remove_worker(
        self, worker_id: int, *, drain: bool = True
    ) -> list[MigrationReport]:
        """Retire a worker; with ``drain`` (default) its shards are first
        live-migrated to the remaining active workers, least-loaded
        first (deterministic).  Returns the drain's migration reports."""
        reports: list[MigrationReport] = []
        if drain:
            owned = self.pool.shards_of(worker_id)
            others = [
                w for w in self.pool.active_workers() if w != worker_id
            ]
            if owned and not others:
                raise InvalidParameterError(
                    "cannot drain the last active worker"
                )
            load = {w: len(self.pool.shards_of(w)) for w in others}
            moves = []
            for o in owned:
                dest = min(others, key=lambda w: (load[w], w))
                load[dest] += 1
                moves.append(
                    ShardMove(shard=o, source=worker_id, destination=dest)
                )
            reports = self._migrator.execute(moves)
        self.pool.remove_worker(worker_id)
        return reports

    # -- chaos (tests) -------------------------------------------------------

    def kill_worker(self, worker_id: int) -> None:
        """SIGKILL one worker process; the next tick respawns and recovers
        it from its journals (needs ``journal_dir`` for kill durability)."""
        self.pool.kill_worker(worker_id)

    async def stop(self) -> None:
        """Stop ticking, flush queued requests as SHUTDOWN, stop workers."""
        if self._timer_task is not None:
            self._timer_task.cancel()
            try:
                await self._timer_task
            except asyncio.CancelledError:
                pass
            self._timer_task = None
        if not self._closed:
            self._closed = True
            for queue in self.queues:
                for p in queue.drain():
                    self.edge.resolve_rejected(p, RejectReason.SHUTDOWN)
            self.pool.stop()
