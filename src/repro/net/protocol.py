"""Typed binary messages for the scheduling service's TCP front door.

Every message is one frame (:mod:`repro.util.framing`) whose payload is a
one-byte type tag followed by a fixed big-endian body.  The codec is
deliberately tiny: :func:`encode_message` produces the *payload* (the
transport frames it), :func:`decode_message` parses one payload back and
raises a typed :class:`~repro.errors.ProtocolError` on anything it cannot
act on — an unknown tag, a short body, trailing garbage.  Arbitrary bytes
must never surface as a bare ``struct.error`` or hang a reader.

Connection lifecycle (version negotiation)::

    client                                server
      | -- HELLO [versions I speak] -------> |
      | <-- WELCOME [chosen, n_fibers, k] -- |   (or ERROR + close)
      | -- SUBMIT seq=1 ... ---------------> |
      | -- TICK_ADVANCE -------------------> |
      | <-- GRANT seq=1 ... ---------------- |   (resolutions, any order)
      | <-- TICK_DONE slot ... ------------- |
      | -- BYE ----------------------------> |   (clean shutdown)

``seq`` is a per-connection client-chosen correlation id (> 0); the
server echoes it on GRANT/REJECT/ERROR so responses can arrive out of
order.  ``seq == 0`` on an ERROR means the error is connection-level
(handshake violation, corrupt frame) and the server will close.

Version negotiation: the client's HELLO lists every protocol version it
speaks; the server picks the highest it also speaks
(:func:`negotiate_version`) and echoes it in WELCOME, or answers ERROR
``no common protocol version`` and closes.

Versions:

* **1** — the original message set (``SUBMIT`` tag 0x05 carries no
  tenant; every request is tenant 0).
* **2** — adds the multi-tenant ``SUBMIT2`` tag (0x0A): the same body as
  ``SUBMIT`` plus a ``tenant`` u32 after ``priority``, and the
  ``ADMISSION_SHED`` reject-reason code.  A v2 peer still emits the v1
  ``SUBMIT`` encoding whenever ``tenant == 0`` — the wire bytes of
  single-tenant traffic are unchanged, so a v2 client interoperates with
  a v1 server until it actually uses tenants (the client refuses to send
  a tenanted request over a v1 connection, and a v2 server downgrades
  ``ADMISSION_SHED`` to ``DROPPED`` when answering a v1 client).
* **3** — adds the ``RATE_LIMITED`` reject-reason code (per-tenant
  token-bucket limiting; a v3 server downgrades it to ``DROPPED`` for
  v ≤ 2 peers — both mean "refused by load pressure, never scheduled")
  and the ``MIGRATE`` (0x0B) / ``MIGRATED`` (0x0C) admin pair: a client
  asks the server to live-migrate one shard to a destination worker and
  receives the migration report (see :mod:`repro.service.resharding`);
  servers whose backing service cannot migrate answer ERROR
  ``BAD_REQUEST``.
* **4** — liveness: the ``PING`` (0x0D) / ``PONG`` (0x0E) heartbeat pair
  (the PONG echoes the PING's token and carries the server's current
  slot, so a reconnecting client resyncs its logical clock from the
  heartbeat), and the ``UNAVAILABLE`` reject-reason code (the request's
  backend is partitioned away — a v4 server downgrades it to
  ``SHARD_DOWN`` for v ≤ 3 peers: both mean "the owner of this output
  fiber cannot serve you right now").  v4 also pins the deterministic
  ``timeout_ticks`` semantics: the deadline is ``submit slot +
  timeout_ticks`` on the *server's* logical clock, so an expired request
  resolves ``TIMED_OUT`` instead of waiting out a partition.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.core.distributed import SlotRequest
from repro.errors import ProtocolError
from repro.service.server import RejectReason

__all__ = [
    "PROTOCOL_VERSIONS",
    "MAX_MESSAGE",
    "MsgType",
    "ErrorCode",
    "Hello",
    "Welcome",
    "ErrorMsg",
    "Bye",
    "Submit",
    "Grant",
    "Reject",
    "TickAdvance",
    "TickDone",
    "Migrate",
    "Migrated",
    "Ping",
    "Pong",
    "Message",
    "encode_message",
    "decode_message",
    "negotiate_version",
    "reject_reason_code",
    "reject_reason_from_code",
]

#: Every protocol version this build speaks, ascending.
PROTOCOL_VERSIONS: tuple[int, ...] = (1, 2, 3, 4)

#: Upper bound on one message payload; a protocol frame beyond this is
#: corruption, not a big message (the largest legal message is a few
#: hundred bytes of ERROR text).
MAX_MESSAGE = 4096


class MsgType(enum.IntEnum):
    """One-byte message tags (never renumber; append only)."""

    HELLO = 0x01
    WELCOME = 0x02
    ERROR = 0x03
    BYE = 0x04
    SUBMIT = 0x05
    GRANT = 0x06
    REJECT = 0x07
    TICK_ADVANCE = 0x08
    TICK_DONE = 0x09
    #: Protocol ≥ 2: SUBMIT with a tenant id (see module docstring).
    SUBMIT2 = 0x0A
    #: Protocol ≥ 3: admin request — live-migrate one shard.
    MIGRATE = 0x0B
    #: Protocol ≥ 3: the MIGRATE's report.
    MIGRATED = 0x0C
    #: Protocol ≥ 4: liveness probe (client → server).
    PING = 0x0D
    #: Protocol ≥ 4: heartbeat reply — echoes the token, carries the
    #: server's current slot (the reconnect clock-resync source).
    PONG = 0x0E


class ErrorCode(enum.IntEnum):
    """Stable codes carried by :class:`ErrorMsg` (append only)."""

    #: HELLO listed no version the server speaks.
    NO_COMMON_VERSION = 1
    #: A message arrived before (or instead of) the HELLO handshake.
    HANDSHAKE_REQUIRED = 2
    #: The message body failed validation (bad fiber/wavelength/seq).
    BAD_REQUEST = 3
    #: The server is shutting down; in-flight work resolves SHUTDOWN.
    SHUTTING_DOWN = 4
    #: Anything else the server could not act on.
    INTERNAL = 5
    #: The byte *stream* is corrupt (CRC mismatch / absurd length): the
    #: connection dies, but the peer said nothing wrong — clients treat
    #: this as connection loss (reconnect), not a protocol violation.
    BAD_FRAME = 6


# -- stable RejectReason <-> u8 codes ---------------------------------------

#: Wire codes for :class:`~repro.service.server.RejectReason` (append only;
#: the enum's *names* are the contract, not its definition order).
_REASON_CODES: dict[RejectReason, int] = {
    RejectReason.CONTENTION: 1,
    RejectReason.SOURCE_BLOCKED: 2,
    RejectReason.QUEUE_FULL: 3,
    RejectReason.DROPPED: 4,
    RejectReason.TIMED_OUT: 5,
    RejectReason.SHUTDOWN: 6,
    RejectReason.SHARD_DOWN: 7,
    RejectReason.CIRCUIT_OPEN: 8,
    RejectReason.DUPLICATE: 9,
    RejectReason.ADMISSION_SHED: 10,  # protocol >= 2 (v1 peers get DROPPED)
    RejectReason.RATE_LIMITED: 11,  # protocol >= 3 (v<=2 peers get DROPPED)
    RejectReason.UNAVAILABLE: 12,  # protocol >= 4 (v<=3 peers get SHARD_DOWN)
}
_CODE_REASONS = {code: reason for reason, code in _REASON_CODES.items()}
assert len(_REASON_CODES) == len(RejectReason), "unmapped RejectReason"


def reject_reason_code(reason: RejectReason) -> int:
    return _REASON_CODES[reason]


def reject_reason_from_code(code: int) -> RejectReason:
    try:
        return _CODE_REASONS[code]
    except KeyError:
        raise ProtocolError(f"unknown reject-reason code {code}") from None


# -- messages ----------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Hello:
    """Client's opener: every protocol version it speaks."""

    versions: tuple[int, ...] = PROTOCOL_VERSIONS


@dataclass(frozen=True, slots=True)
class Welcome:
    """Server's handshake reply: chosen version + interconnect shape."""

    version: int
    n_fibers: int
    k: int


@dataclass(frozen=True, slots=True)
class ErrorMsg:
    """A typed failure.  ``seq == 0`` means connection-level (the server
    closes after sending); otherwise it resolves that submission."""

    seq: int
    code: int
    message: str


@dataclass(frozen=True, slots=True)
class Bye:
    """Clean shutdown: no more messages will follow from the sender."""


@dataclass(frozen=True, slots=True)
class Submit:
    """One slot request.  ``seq`` (> 0) correlates the response;
    ``timeout_ticks < 0`` means no deadline; ``request_id`` is the
    optional idempotency key (empty = none); ``tenant`` is the traffic
    owner (0 = default; non-zero needs a protocol ≥ 2 connection and is
    carried by the ``SUBMIT2`` tag — tenant-0 submissions keep the v1
    ``SUBMIT`` bytes)."""

    seq: int
    input_fiber: int
    wavelength: int
    output_fiber: int
    duration: int = 1
    priority: int = 0
    timeout_ticks: int = -1
    request_id: str = ""
    tenant: int = 0

    def to_request(self) -> SlotRequest:
        return SlotRequest(
            self.input_fiber,
            self.wavelength,
            self.output_fiber,
            duration=self.duration,
            priority=self.priority,
            tenant=self.tenant,
        )


@dataclass(frozen=True, slots=True)
class Grant:
    """The submission ``seq`` was granted ``channel`` at ``slot``."""

    seq: int
    channel: int
    slot: int


@dataclass(frozen=True, slots=True)
class Reject:
    """The submission ``seq`` resolved without a channel.
    ``slot == -1`` means the rejection predates any tick."""

    seq: int
    reason: RejectReason
    slot: int = -1


@dataclass(frozen=True, slots=True)
class TickAdvance:
    """Run ``count`` slot ticks, then answer one TICK_DONE."""

    count: int = 1


@dataclass(frozen=True, slots=True)
class TickDone:
    """Ticks completed; ``slot`` is the next slot index,
    ``granted`` the number of grants those ticks issued."""

    slot: int
    granted: int


@dataclass(frozen=True, slots=True)
class Migrate:
    """Protocol ≥ 3 admin request: live-migrate ``shard`` to worker
    ``destination`` at the next tick boundary.  ``seq`` (> 0) correlates
    the MIGRATED (or ERROR) reply."""

    seq: int
    shard: int
    destination: int


@dataclass(frozen=True, slots=True)
class Migrated:
    """The MIGRATE ``seq`` completed: the shard now lives on
    ``destination`` (moved from ``source``), ``next_tick`` is its verified
    resume slot, ``payload_bytes``/``journal_records`` size the handoff,
    and ``resumed`` flags a re-driven (post-flip recovery) migration."""

    seq: int
    shard: int
    source: int
    destination: int
    next_tick: int
    payload_bytes: int
    journal_records: int
    resumed: bool = False


@dataclass(frozen=True, slots=True)
class Ping:
    """Protocol ≥ 4 liveness probe.  ``token`` correlates the PONG (the
    client's liveness detector matches replies to probes, so a stale
    PONG from before a stall never masks a fresh miss)."""

    token: int


@dataclass(frozen=True, slots=True)
class Pong:
    """The PING ``token``'s heartbeat reply; ``slot`` is the server's
    current (next-to-run) slot index — a reconnecting client resyncs its
    logical clock from this before redelivering in-flight requests."""

    token: int
    slot: int


Message = (
    Hello
    | Welcome
    | ErrorMsg
    | Bye
    | Submit
    | Grant
    | Reject
    | TickAdvance
    | TickDone
    | Migrate
    | Migrated
    | Ping
    | Pong
)


# -- codec -------------------------------------------------------------------

_WELCOME = struct.Struct("!HII")
_ERROR_HEAD = struct.Struct("!QHH")
_SUBMIT_HEAD = struct.Struct("!QIIIIiqH")
_SUBMIT2_HEAD = struct.Struct("!QIIIIiIqH")  # + tenant u32 after priority
_GRANT = struct.Struct("!QIq")
_REJECT = struct.Struct("!QBq")
_TICK_ADVANCE = struct.Struct("!I")
_TICK_DONE = struct.Struct("!qI")
_MIGRATE = struct.Struct("!QII")
_MIGRATED = struct.Struct("!QIIIQQQB")
_PING = struct.Struct("!Q")
_PONG = struct.Struct("!Qq")

_MAX_ERROR_TEXT = 1024
_MAX_REQUEST_ID = 256
_MAX_VERSIONS = 64


def encode_message(msg: Message) -> bytes:
    """Serialize ``msg`` to one frame payload (tag byte + body)."""
    if isinstance(msg, Hello):
        if not msg.versions or len(msg.versions) > _MAX_VERSIONS:
            raise ProtocolError(
                f"HELLO must list 1..{_MAX_VERSIONS} versions, "
                f"got {len(msg.versions)}"
            )
        return (
            bytes([MsgType.HELLO, len(msg.versions)])
            + struct.pack(f"!{len(msg.versions)}H", *msg.versions)
        )
    if isinstance(msg, Welcome):
        return bytes([MsgType.WELCOME]) + _WELCOME.pack(
            msg.version, msg.n_fibers, msg.k
        )
    if isinstance(msg, ErrorMsg):
        text = msg.message.encode("utf-8")[:_MAX_ERROR_TEXT]
        return (
            bytes([MsgType.ERROR])
            + _ERROR_HEAD.pack(msg.seq, msg.code, len(text))
            + text
        )
    if isinstance(msg, Bye):
        return bytes([MsgType.BYE])
    if isinstance(msg, Submit):
        rid = msg.request_id.encode("utf-8")
        if len(rid) > _MAX_REQUEST_ID:
            raise ProtocolError(
                f"request_id of {len(rid)} bytes exceeds {_MAX_REQUEST_ID}"
            )
        if msg.tenant:
            # Protocol >= 2 encoding; tenant-0 submissions keep the v1
            # SUBMIT bytes so single-tenant traffic is wire-identical.
            return (
                bytes([MsgType.SUBMIT2])
                + _SUBMIT2_HEAD.pack(
                    msg.seq,
                    msg.input_fiber,
                    msg.wavelength,
                    msg.output_fiber,
                    msg.duration,
                    msg.priority,
                    msg.tenant,
                    msg.timeout_ticks,
                    len(rid),
                )
                + rid
            )
        return (
            bytes([MsgType.SUBMIT])
            + _SUBMIT_HEAD.pack(
                msg.seq,
                msg.input_fiber,
                msg.wavelength,
                msg.output_fiber,
                msg.duration,
                msg.priority,
                msg.timeout_ticks,
                len(rid),
            )
            + rid
        )
    if isinstance(msg, Grant):
        return bytes([MsgType.GRANT]) + _GRANT.pack(msg.seq, msg.channel, msg.slot)
    if isinstance(msg, Reject):
        return bytes([MsgType.REJECT]) + _REJECT.pack(
            msg.seq, reject_reason_code(msg.reason), msg.slot
        )
    if isinstance(msg, TickAdvance):
        return bytes([MsgType.TICK_ADVANCE]) + _TICK_ADVANCE.pack(msg.count)
    if isinstance(msg, TickDone):
        return bytes([MsgType.TICK_DONE]) + _TICK_DONE.pack(msg.slot, msg.granted)
    if isinstance(msg, Migrate):
        return bytes([MsgType.MIGRATE]) + _MIGRATE.pack(
            msg.seq, msg.shard, msg.destination
        )
    if isinstance(msg, Migrated):
        return bytes([MsgType.MIGRATED]) + _MIGRATED.pack(
            msg.seq,
            msg.shard,
            msg.source,
            msg.destination,
            msg.next_tick,
            msg.payload_bytes,
            msg.journal_records,
            1 if msg.resumed else 0,
        )
    if isinstance(msg, Ping):
        return bytes([MsgType.PING]) + _PING.pack(msg.token)
    if isinstance(msg, Pong):
        return bytes([MsgType.PONG]) + _PONG.pack(msg.token, msg.slot)
    raise ProtocolError(f"cannot encode {type(msg).__name__}")


def _exact(payload: bytes, fmt: struct.Struct, name: str) -> tuple:
    if len(payload) != 1 + fmt.size:
        raise ProtocolError(
            f"{name} body is {len(payload) - 1} bytes, expected {fmt.size}"
        )
    return fmt.unpack_from(payload, 1)


def decode_message(payload: bytes) -> Message:
    """Parse one frame payload back into a message.

    Raises :class:`~repro.errors.ProtocolError` on an unknown tag, a
    wrong-size body, or trailing garbage — never a bare ``struct.error``.
    """
    if not payload:
        raise ProtocolError("empty message payload")
    tag = payload[0]
    try:
        mtype = MsgType(tag)
    except ValueError:
        raise ProtocolError(f"unknown message tag 0x{tag:02x}") from None
    try:
        if mtype is MsgType.HELLO:
            if len(payload) < 2:
                raise ProtocolError("HELLO missing version count")
            n = payload[1]
            if n == 0 or n > _MAX_VERSIONS:
                raise ProtocolError(f"HELLO version count {n} out of range")
            if len(payload) != 2 + 2 * n:
                raise ProtocolError("HELLO body length disagrees with count")
            return Hello(struct.unpack_from(f"!{n}H", payload, 2))
        if mtype is MsgType.WELCOME:
            return Welcome(*_exact(payload, _WELCOME, "WELCOME"))
        if mtype is MsgType.ERROR:
            if len(payload) < 1 + _ERROR_HEAD.size:
                raise ProtocolError("ERROR body too short")
            seq, code, text_len = _ERROR_HEAD.unpack_from(payload, 1)
            text = payload[1 + _ERROR_HEAD.size :]
            if len(text) != text_len:
                raise ProtocolError("ERROR text length disagrees with header")
            return ErrorMsg(seq, code, text.decode("utf-8", "replace"))
        if mtype is MsgType.BYE:
            if len(payload) != 1:
                raise ProtocolError("BYE carries no body")
            return Bye()
        if mtype is MsgType.SUBMIT:
            if len(payload) < 1 + _SUBMIT_HEAD.size:
                raise ProtocolError("SUBMIT body too short")
            (seq, inf, wl, outf, dur, prio, timeout, rid_len) = (
                _SUBMIT_HEAD.unpack_from(payload, 1)
            )
            rid = payload[1 + _SUBMIT_HEAD.size :]
            if len(rid) != rid_len:
                raise ProtocolError(
                    "SUBMIT request_id length disagrees with header"
                )
            if seq == 0:
                raise ProtocolError("SUBMIT seq must be > 0")
            return Submit(
                seq,
                inf,
                wl,
                outf,
                duration=dur,
                priority=prio,
                timeout_ticks=timeout,
                request_id=rid.decode("utf-8", "replace"),
            )
        if mtype is MsgType.SUBMIT2:
            if len(payload) < 1 + _SUBMIT2_HEAD.size:
                raise ProtocolError("SUBMIT2 body too short")
            (seq, inf, wl, outf, dur, prio, tenant, timeout, rid_len) = (
                _SUBMIT2_HEAD.unpack_from(payload, 1)
            )
            rid = payload[1 + _SUBMIT2_HEAD.size :]
            if len(rid) != rid_len:
                raise ProtocolError(
                    "SUBMIT2 request_id length disagrees with header"
                )
            if seq == 0:
                raise ProtocolError("SUBMIT2 seq must be > 0")
            return Submit(
                seq,
                inf,
                wl,
                outf,
                duration=dur,
                priority=prio,
                timeout_ticks=timeout,
                request_id=rid.decode("utf-8", "replace"),
                tenant=tenant,
            )
        if mtype is MsgType.GRANT:
            return Grant(*_exact(payload, _GRANT, "GRANT"))
        if mtype is MsgType.REJECT:
            seq, code, slot = _exact(payload, _REJECT, "REJECT")
            return Reject(seq, reject_reason_from_code(code), slot)
        if mtype is MsgType.TICK_ADVANCE:
            (count,) = _exact(payload, _TICK_ADVANCE, "TICK_ADVANCE")
            if count == 0:
                raise ProtocolError("TICK_ADVANCE count must be > 0")
            return TickAdvance(count)
        if mtype is MsgType.MIGRATE:
            seq, shard, destination = _exact(payload, _MIGRATE, "MIGRATE")
            if seq == 0:
                raise ProtocolError("MIGRATE seq must be > 0")
            return Migrate(seq, shard, destination)
        if mtype is MsgType.MIGRATED:
            (seq, shard, src, dst, tick, nbytes, nrecords, resumed) = _exact(
                payload, _MIGRATED, "MIGRATED"
            )
            if resumed > 1:
                raise ProtocolError(f"MIGRATED resumed flag {resumed} not 0/1")
            return Migrated(
                seq, shard, src, dst, tick, nbytes, nrecords, bool(resumed)
            )
        if mtype is MsgType.PING:
            return Ping(*_exact(payload, _PING, "PING"))
        if mtype is MsgType.PONG:
            return Pong(*_exact(payload, _PONG, "PONG"))
        # TICK_DONE
        return TickDone(*_exact(payload, _TICK_DONE, "TICK_DONE"))
    except struct.error as exc:  # defensive: any unpack slip is typed
        raise ProtocolError(f"malformed {mtype.name} body: {exc}") from exc


def negotiate_version(
    client_versions: tuple[int, ...] | list[int],
    server_versions: tuple[int, ...] = PROTOCOL_VERSIONS,
) -> int | None:
    """Highest protocol version both sides speak, or None."""
    common = set(client_versions) & set(server_versions)
    return max(common) if common else None
