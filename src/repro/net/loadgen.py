"""Process-based load generation for the TCP front door.

Drives a running :class:`~repro.net.server.NetServer` from **separate OS
processes**: each load process opens its own :class:`NetClient`, submits
seeded random requests in pipelined batches, and measures per-request
latency; the caller's process drives slot ticks over its own connection
until every load process reports back.  This is the external-driver
shape the open-shop scheduling literature uses — the system under test
never generates its own load.

``python -m repro.net.loadgen`` is the self-contained integration
entrypoint used by CI and ``benchmarks/bench_net.py``: it starts a
multi-process :class:`~repro.net.procservice.ProcessShardedService`
behind a :class:`NetServer`, fires the load processes at it, then
asserts the conservation invariant (every submission resolved exactly
once: ``submitted == granted + Σ rejected.*``) before exiting 0.
"""

from __future__ import annotations

import argparse
import asyncio
import multiprocessing as mp
import random
import statistics
import sys
import time
from dataclasses import dataclass

from repro.core.distributed import SlotRequest
from repro.errors import ProtocolError

__all__ = ["NetLoadReport", "run_load", "main"]

#: Per-child cap on latency samples shipped back over the queue.
_MAX_SAMPLES = 10_000


@dataclass(frozen=True, slots=True)
class NetLoadReport:
    """Aggregate of one :func:`run_load` run."""

    processes: int
    submitted: int
    granted: int
    rejected: int
    errors: int
    ticks: int
    elapsed: float
    p50_ms: float
    p99_ms: float

    @property
    def conserved(self) -> bool:
        """Every submission resolved exactly once."""
        return self.submitted == self.granted + self.rejected + self.errors

    @property
    def ticks_per_second(self) -> float:
        return self.ticks / self.elapsed if self.elapsed > 0 else 0.0


async def _child_async(
    host: str, port: int, seed: int, n_requests: int, batch: int
) -> tuple[int, int, int, int, list[float]]:
    from repro.net.client import NetClient
    from repro.net import protocol as proto

    rng = random.Random(seed)
    client = await NetClient.connect(host, port)
    submitted = granted = rejected = errors = 0
    latencies: list[float] = []
    try:
        n_fibers, k = client.n_fibers, client.k
        while submitted < n_requests:
            n = min(batch, n_requests - submitted)
            reqs = [
                SlotRequest(
                    rng.randrange(n_fibers),
                    rng.randrange(k),
                    rng.randrange(n_fibers),
                )
                for _ in range(n)
            ]
            t0 = time.perf_counter()
            futures = [client.submit_nowait(r) for r in reqs]
            submitted += n
            outcomes = await asyncio.gather(*futures, return_exceptions=True)
            dt = time.perf_counter() - t0
            if len(latencies) < _MAX_SAMPLES:
                latencies.extend([dt / n] * n)
            for out in outcomes:
                if isinstance(out, proto.Grant):
                    granted += 1
                elif isinstance(out, proto.Reject):
                    rejected += 1
                else:
                    errors += 1
    finally:
        await client.close()
    return submitted, granted, rejected, errors, latencies


def _child_main(
    host: str, port: int, seed: int, n_requests: int, batch: int, report_q
) -> None:
    """Entry point of one load process (module-level: spawn-picklable)."""
    try:
        report_q.put(
            ("ok", asyncio.run(_child_async(host, port, seed, n_requests, batch)))
        )
    except BaseException as exc:  # report, don't hang the parent
        report_q.put(("error", repr(exc)))


async def _drive_and_collect(
    host: str,
    port: int,
    processes: list,
    report_q,
    max_ticks: int,
) -> tuple[list, int]:
    """Tick the server from this process until every child reported."""
    from repro.net.client import NetClient

    reports: list = []
    ticks = 0
    driver = await NetClient.connect(host, port)
    try:
        while len(reports) < len(processes):
            if ticks >= max_ticks:
                raise ProtocolError(
                    f"load did not complete within {max_ticks} ticks"
                )
            await driver.tick(1)
            ticks += 1
            while True:
                try:
                    reports.append(report_q.get_nowait())
                except Exception:
                    break
            # Yield so resolution callbacks run between ticks.
            await asyncio.sleep(0)
    finally:
        await driver.close()
    return reports, ticks


def run_load(
    host: str,
    port: int,
    *,
    processes: int = 2,
    requests_per_process: int = 200,
    batch: int = 8,
    seed: int = 0,
    max_ticks: int = 100_000,
) -> NetLoadReport:
    """Fire ``processes`` external load processes at a running server.

    Blocking call (it runs its own event loop to drive ticks); call it
    from a thread when the server shares this process's loop — or, as in
    ``__main__`` below, run the server on a background thread.
    """
    ctx = mp.get_context("spawn")
    report_q = ctx.Queue()
    procs = [
        ctx.Process(
            target=_child_main,
            args=(host, port, seed + i, requests_per_process, batch, report_q),
            name=f"repro-loadgen-{i}",
            daemon=True,
        )
        for i in range(processes)
    ]
    t0 = time.perf_counter()
    for p in procs:
        p.start()
    try:
        reports, ticks = asyncio.run(
            _drive_and_collect(host, port, procs, report_q, max_ticks)
        )
    finally:
        for p in procs:
            p.join(timeout=30.0)
            if p.is_alive():
                p.kill()
                p.join(timeout=5.0)
    elapsed = time.perf_counter() - t0

    submitted = granted = rejected = errors = 0
    latencies: list[float] = []
    for tag, payload in reports:
        if tag != "ok":
            raise ProtocolError(f"load process failed: {payload}")
        s, g, r, e, lat = payload
        submitted += s
        granted += g
        rejected += r
        errors += e
        latencies.extend(lat)
    latencies.sort()
    if latencies:
        p50 = statistics.median(latencies) * 1e3
        p99 = latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))] * 1e3
    else:
        p50 = p99 = 0.0
    return NetLoadReport(
        processes=processes,
        submitted=submitted,
        granted=granted,
        rejected=rejected,
        errors=errors,
        ticks=ticks,
        elapsed=elapsed,
        p50_ms=p50,
        p99_ms=p99,
    )


def main(argv: "list[str] | None" = None) -> int:
    """CI integration entrypoint: multi-process server + external load +
    conservation assertion.  Exits non-zero on any violation."""
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--n-fibers", type=int, default=8)
    ap.add_argument("--k", type=int, default=4)
    ap.add_argument("--workers", type=int, default=2, help="shard worker processes")
    ap.add_argument("--processes", type=int, default=2, help="load processes")
    ap.add_argument("--requests", type=int, default=200, help="per load process")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--journal-dir", default=None)
    args = ap.parse_args(argv)

    import threading

    from repro.core.first_available import FirstAvailableScheduler
    from repro.graphs.conversion import NonCircularConversion
    from repro.net.procservice import ProcessShardedService
    from repro.net.server import NetServer

    loop = asyncio.new_event_loop()
    service = server = None
    ready = threading.Event()

    async def _bring_up():
        nonlocal service, server
        service = ProcessShardedService(
            args.n_fibers,
            NonCircularConversion(args.k, 1, 1),
            FirstAvailableScheduler(),
            n_workers=args.workers,
            journal_dir=args.journal_dir,
        )
        server = NetServer(service)
        await server.start()
        return server.port

    def _loop_thread():
        asyncio.set_event_loop(loop)
        loop.call_soon(ready.set)
        loop.run_forever()

    t = threading.Thread(target=_loop_thread, name="repro-net-main", daemon=True)
    t.start()
    ready.wait()
    port = asyncio.run_coroutine_threadsafe(_bring_up(), loop).result(60)
    print(
        f"server up on 127.0.0.1:{port} — {args.workers} worker processes, "
        f"placement {service.placement}"
    )
    try:
        report = run_load(
            "127.0.0.1",
            port,
            processes=args.processes,
            requests_per_process=args.requests,
            seed=args.seed,
        )
    finally:
        async def _bring_down():
            await server.stop()
            await service.stop()

        asyncio.run_coroutine_threadsafe(_bring_down(), loop).result(60)
        loop.call_soon_threadsafe(loop.stop)
        t.join(timeout=10.0)

    print(
        f"load: {report.submitted} submitted, {report.granted} granted, "
        f"{report.rejected} rejected, {report.errors} errors over "
        f"{report.ticks} ticks in {report.elapsed:.2f}s "
        f"({report.ticks_per_second:.0f} ticks/s, "
        f"p50 {report.p50_ms:.2f} ms, p99 {report.p99_ms:.2f} ms)"
    )
    if not report.conserved:
        print("CONSERVATION VIOLATED: submitted != granted + rejected + errors")
        return 1
    if report.errors:
        print(f"{report.errors} submissions resolved with errors")
        return 1
    print("conservation holds: every submission resolved exactly once")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI
    sys.exit(main())
