"""Consistent-hash shard→worker placement.

The multi-process service assigns each output-fiber shard to a worker
process with a classic consistent-hash ring: every worker contributes
``replicas`` virtual points on a circle keyed by a *stable* hash
(``blake2b`` — never Python's randomized ``hash()``, which would place
shards differently in every process), and a shard lands on the first
point clockwise of its own key.

Why a ring instead of ``shard % n_workers``: growing or shrinking the
worker set moves only ~``1/n`` of the shards, so a future resize
invalidates only the journals of the shards that actually moved, not
everyone's.  The placement is a pure function of (worker ids, replicas),
so parent and tests can both compute it without asking the pool.

With only a handful of shards a bare ring is badly lumpy (16 shards on
2 workers can split 13/3), which would starve the parallelism the whole
subsystem exists for — so :meth:`HashRing.placement` uses the
*bounded-load* variant: a shard whose preferred worker is already at
capacity ``ceil(n_shards / n_workers)`` walks clockwise to the next
worker with room.  Balance becomes exact (±1) while most shards still
sit at their ring-preferred owner, preserving the resize-stability
property for the ones that matter.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Sequence

from repro.errors import InvalidParameterError
from repro.util.validation import check_positive_int

__all__ = ["HashRing"]


def _point(key: str) -> int:
    """Stable 64-bit ring coordinate for ``key``."""
    return int.from_bytes(
        hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """Consistent-hash ring over a fixed set of worker ids."""

    def __init__(self, nodes: Iterable[int], *, replicas: int = 256) -> None:
        self.nodes = tuple(nodes)
        if not self.nodes:
            raise InvalidParameterError("HashRing needs at least one node")
        if len(set(self.nodes)) != len(self.nodes):
            raise InvalidParameterError(f"duplicate node ids: {self.nodes}")
        self.replicas = check_positive_int(replicas, "replicas")
        points: list[tuple[int, int]] = []
        for node in self.nodes:
            for r in range(self.replicas):
                points.append((_point(f"worker-{node}#{r}"), node))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [n for _, n in points]

    def node_for(self, key: str) -> int:
        """The node preferring ``key`` (first ring point clockwise;
        unbounded — :meth:`placement` adds the load bound)."""
        i = bisect.bisect(self._hashes, _point(key))
        return self._owners[i % len(self._owners)]

    def placement(self, n_shards: int) -> dict[int, int]:
        """Bounded-load shard → worker map for shards ``0..n_shards-1``.

        Each shard starts at its ring-preferred worker and walks
        clockwise past workers already holding
        ``ceil(n_shards / n_workers)`` shards, so no worker ever exceeds
        that capacity.  Deterministic: a pure function of the ring and
        ``n_shards``.
        """
        capacity = -(-n_shards // len(self.nodes))
        load: dict[int, int] = {n: 0 for n in self.nodes}
        out: dict[int, int] = {}
        n_points = len(self._owners)
        for o in range(n_shards):
            i = bisect.bisect(self._hashes, _point(f"shard-{o}"))
            for step in range(n_points):
                owner = self._owners[(i + step) % n_points]
                if load[owner] < capacity:
                    out[o] = owner
                    load[owner] += 1
                    break
        # The capacity walk bounds the maximum but not the minimum: with
        # few shards per worker (e.g. 4 shards on 3 workers) it can leave
        # a worker empty while another sits at capacity — an idle process
        # defeats the parallelism this placement exists for.  Fix-up pass:
        # donate highest-numbered shards from the most-loaded workers
        # until everyone holds at least ``floor(n_shards / n_workers)``.
        # Deterministic (max-load donor, node id tie-break) so every
        # process still computes the identical map.
        floor = n_shards // len(self.nodes)
        for needy in sorted(n for n in self.nodes if load[n] < floor):
            while load[needy] < floor:
                donor = max(
                    (n for n in self.nodes if load[n] > floor),
                    key=lambda n: (load[n], n),
                )
                shard = max(o for o, w in out.items() if w == donor)
                out[shard] = needy
                load[donor] -= 1
                load[needy] += 1
        return out

    def shards_of(self, node: int, n_shards: int) -> list[int]:
        """Ascending list of shards placed on ``node``."""
        placement = self.placement(n_shards)
        return [o for o in range(n_shards) if placement[o] == node]
