"""The asyncio TCP front door for the scheduling service.

One :class:`NetServer` wraps any backend with the service surface
(``submit_nowait`` / ``tick`` / ``slot`` / ``n_fibers`` / ``scheme``) —
the in-process :class:`~repro.service.server.SchedulingService` or the
multi-process :class:`~repro.net.procservice.ProcessShardedService` —
and serves the wire protocol (:mod:`repro.net.protocol`) over length+CRC
frames (:mod:`repro.util.framing`).

Per-connection discipline:

* the first message must be HELLO; the server answers WELCOME with the
  negotiated version and the interconnect shape, or ERROR
  ``NO_COMMON_VERSION`` and closes;
* SUBMIT resolves asynchronously — the response (GRANT / REJECT /
  ERROR with the same ``seq``) is written when the service resolves the
  future, so responses may interleave with later requests;
* TICK_ADVANCE runs ticks under one server-wide lock (ticks are global,
  connections must not interleave halves of them) and answers TICK_DONE;
* PING (protocol ≥ 4) answers PONG carrying the current slot — the
  heartbeat that feeds the client-side liveness detector and resyncs a
  reconnecting client's logical clock;
* corrupt frames or protocol violations get a best-effort ERROR with
  ``seq == 0`` and the connection dies — a reader is never left hanging.

Liveness discipline (protocol v4, PR 10):

* ``handshake_timeout`` — a peer that connects and never completes the
  HELLO within the deadline is shed (best-effort ERROR
  ``HANDSHAKE_REQUIRED`` + close), so a half-open socket cannot pin a
  connection task forever;
* ``idle_timeout`` — a greeted connection that stays silent longer than
  the window is reaped (best-effort BYE + close).  v4 clients heartbeat
  (PING counts as traffic), so only dead or wedged peers are reaped.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING

from repro.errors import (
    FramingError,
    InvalidParameterError,
    MigrationError,
    ProtocolError,
    SimulationError,
)
from repro.net import protocol as proto
from repro.service.server import Rejected, RejectReason, ServiceGrant
from repro.util.framing import FrameDecoder, encode_frame

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.protocol import Message

__all__ = ["NetServer"]

_READ_CHUNK = 65536


class _Conn:
    """Per-connection state: writer, negotiated version, watched futures."""

    __slots__ = ("writer", "watched", "closed", "version")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.watched: "set[asyncio.Future]" = set()
        self.closed = False
        self.version = max(proto.PROTOCOL_VERSIONS)

    def send(self, msg: "Message") -> None:
        if not self.closed:
            self.writer.write(encode_frame(proto.encode_message(msg)))


class NetServer:
    """Serve a scheduling service over TCP (see module docstring).

    The server owns only the network edge; the backend service's
    lifecycle stays with the caller (``stop()`` closes sockets, not the
    service).  ``port=0`` binds an ephemeral port, readable from
    :attr:`port` after :meth:`start`.

    ``handshake_timeout`` (seconds) sheds peers that connect but never
    complete the HELLO; ``idle_timeout`` (seconds, default off) reaps
    greeted connections with no inbound traffic for that long — see the
    module docstring's liveness discipline.
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        handshake_timeout: float | None = 10.0,
        idle_timeout: float | None = None,
    ) -> None:
        if handshake_timeout is not None and handshake_timeout <= 0:
            raise InvalidParameterError(
                f"handshake_timeout must be > 0, got {handshake_timeout}"
            )
        if idle_timeout is not None and idle_timeout <= 0:
            raise InvalidParameterError(
                f"idle_timeout must be > 0, got {idle_timeout}"
            )
        self.service = service
        self.host = host
        self.handshake_timeout = handshake_timeout
        self.idle_timeout = idle_timeout
        self._requested_port = port
        self._server: asyncio.base_events.Server | None = None
        self._conns: set[_Conn] = set()
        self._handlers: "set[asyncio.Task]" = set()
        self._tick_lock = asyncio.Lock()

    @property
    def port(self) -> int:
        if self._server is None:
            raise SimulationError("server not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        if self._server is not None:
            raise SimulationError("server already started")
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self._requested_port
        )

    async def stop(self) -> None:
        """Close the listener and every connection; idempotent."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._handlers):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers, return_exceptions=True)
        self._handlers.clear()

    async def __aenter__(self) -> "NetServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- connection handling -------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        conn = _Conn(writer)
        self._conns.add(conn)
        try:
            await self._serve_connection(conn, reader)
        except asyncio.CancelledError:
            pass
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            self._teardown(conn)
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError, asyncio.CancelledError):
                pass
            if task is not None:
                self._handlers.discard(task)

    def _teardown(self, conn: _Conn) -> None:
        """Detach watched futures (they may resolve after close — the
        service still owns them; we just must not write) and close."""
        if conn.closed:
            return
        conn.closed = True
        self._conns.discard(conn)
        conn.watched.clear()
        if not conn.writer.is_closing():
            conn.writer.close()

    async def _serve_connection(
        self, conn: _Conn, reader: asyncio.StreamReader
    ) -> None:
        decoder = FrameDecoder(max_payload=proto.MAX_MESSAGE)
        greeted = False
        while True:
            read_timeout = (
                self.handshake_timeout if not greeted else self.idle_timeout
            )
            try:
                if read_timeout is None:
                    data = await reader.read(_READ_CHUNK)
                else:
                    data = await asyncio.wait_for(
                        reader.read(_READ_CHUNK), read_timeout
                    )
            except asyncio.TimeoutError:
                if not greeted:
                    # Half-open peer: never finished HELLO — shed it.
                    conn.send(
                        proto.ErrorMsg(
                            0,
                            proto.ErrorCode.HANDSHAKE_REQUIRED,
                            f"no HELLO within {self.handshake_timeout}s "
                            "handshake deadline",
                        )
                    )
                else:
                    # Idle reaping: a silent (non-heartbeating) peer.
                    conn.send(proto.Bye())
                await self._flush(conn)
                return
            if not data:
                return  # peer closed (mid-frame EOFs just die with it)
            try:
                payloads = decoder.feed(data)
            except FramingError as exc:
                conn.send(
                    proto.ErrorMsg(0, proto.ErrorCode.BAD_FRAME, str(exc))
                )
                break
            for payload in payloads:
                try:
                    msg = proto.decode_message(payload)
                except ProtocolError as exc:
                    conn.send(
                        proto.ErrorMsg(
                            0, proto.ErrorCode.BAD_REQUEST, str(exc)
                        )
                    )
                    await self._flush(conn)
                    return
                if isinstance(msg, proto.Bye):
                    return
                if not greeted:
                    if not await self._handshake(conn, msg):
                        return
                    greeted = True
                    continue
                if not await self._dispatch(conn, msg):
                    return
            await self._flush(conn)

    async def _flush(self, conn: _Conn) -> None:
        if not conn.closed and not conn.writer.is_closing():
            try:
                await conn.writer.drain()
            except (ConnectionError, BrokenPipeError):
                conn.closed = True

    async def _handshake(self, conn: _Conn, msg: "Message") -> bool:
        if not isinstance(msg, proto.Hello):
            conn.send(
                proto.ErrorMsg(
                    0,
                    proto.ErrorCode.HANDSHAKE_REQUIRED,
                    f"expected HELLO first, got {type(msg).__name__}",
                )
            )
            await self._flush(conn)
            return False
        version = proto.negotiate_version(msg.versions)
        if version is None:
            conn.send(
                proto.ErrorMsg(
                    0,
                    proto.ErrorCode.NO_COMMON_VERSION,
                    f"server speaks {list(proto.PROTOCOL_VERSIONS)}, "
                    f"client offered {list(msg.versions)}",
                )
            )
            await self._flush(conn)
            return False
        conn.version = version
        conn.send(
            proto.Welcome(version, self.service.n_fibers, self.service.scheme.k)
        )
        await self._flush(conn)
        return True

    async def _dispatch(self, conn: _Conn, msg: "Message") -> bool:
        """Handle one post-handshake message; False closes the connection."""
        if isinstance(msg, proto.Submit):
            self._handle_submit(conn, msg)
            return True
        if isinstance(msg, proto.TickAdvance):
            async with self._tick_lock:
                granted = 0
                for _ in range(msg.count):
                    granted += await self.service.tick()
            conn.send(proto.TickDone(self.service.slot, granted))
            return True
        if isinstance(msg, proto.Migrate):
            await self._handle_migrate(conn, msg)
            return True
        if isinstance(msg, proto.Ping):
            if conn.version < 4:
                conn.send(
                    proto.ErrorMsg(
                        0,
                        proto.ErrorCode.BAD_REQUEST,
                        f"PING needs protocol >= 4, connection negotiated "
                        f"version {conn.version}",
                    )
                )
                await self._flush(conn)
                return False
            conn.send(proto.Pong(msg.token, self.service.slot))
            return True
        conn.send(
            proto.ErrorMsg(
                0,
                proto.ErrorCode.BAD_REQUEST,
                f"{type(msg).__name__} is not a client message",
            )
        )
        await self._flush(conn)
        return False

    async def _handle_migrate(self, conn: _Conn, msg: proto.Migrate) -> None:
        """Protocol ≥ 3 admin op: live-migrate one shard, reply MIGRATED.

        Runs under the tick lock — the migration engine's quiesce phase
        *is* the tick boundary, so no tick may interleave with it.
        """
        if conn.version < 3:
            conn.send(
                proto.ErrorMsg(
                    msg.seq,
                    proto.ErrorCode.BAD_REQUEST,
                    f"MIGRATE needs protocol >= 3, connection negotiated "
                    f"version {conn.version}",
                )
            )
            return
        migrate = getattr(self.service, "migrate_shard", None)
        if migrate is None:
            conn.send(
                proto.ErrorMsg(
                    msg.seq,
                    proto.ErrorCode.BAD_REQUEST,
                    "this server's backend does not support live migration",
                )
            )
            return
        try:
            async with self._tick_lock:
                report = migrate(msg.shard, msg.destination)
        except (InvalidParameterError, MigrationError) as exc:
            conn.send(
                proto.ErrorMsg(msg.seq, proto.ErrorCode.BAD_REQUEST, str(exc))
            )
            return
        conn.send(
            proto.Migrated(
                msg.seq,
                report.shard,
                report.source,
                report.destination,
                report.next_tick,
                report.payload_bytes,
                report.journal_records,
                report.resumed,
            )
        )

    def _handle_submit(self, conn: _Conn, msg: proto.Submit) -> None:
        if msg.tenant and conn.version < 2:
            # A v1 peer has no SUBMIT2 and should never have sent one.
            conn.send(
                proto.ErrorMsg(
                    msg.seq,
                    proto.ErrorCode.BAD_REQUEST,
                    f"tenant {msg.tenant} needs protocol >= 2, connection "
                    f"negotiated version {conn.version}",
                )
            )
            return
        # timeout_ticks is a deterministic slot deadline (submit slot +
        # timeout_ticks on the server's logical clock), not a wall-clock
        # conversion: the same schedule expires the same requests at the
        # same slots every run, partitions included.
        try:
            future = self.service.submit_nowait(
                msg.to_request(),
                timeout_ticks=(
                    None if msg.timeout_ticks < 0 else msg.timeout_ticks
                ),
                request_id=msg.request_id or None,
            )
        except (InvalidParameterError, SimulationError) as exc:
            conn.send(
                proto.ErrorMsg(msg.seq, proto.ErrorCode.BAD_REQUEST, str(exc))
            )
            return
        seq = msg.seq
        conn.watched.add(future)

        def _resolved(fut: "asyncio.Future") -> None:
            conn.watched.discard(fut)
            if conn.closed or fut.cancelled():
                return
            exc = fut.exception()
            if exc is not None:
                conn.send(
                    proto.ErrorMsg(seq, proto.ErrorCode.INTERNAL, str(exc))
                )
                return
            outcome = fut.result()
            if isinstance(outcome, ServiceGrant):
                conn.send(proto.Grant(seq, outcome.channel, outcome.slot))
            else:
                assert isinstance(outcome, Rejected)
                reason = outcome.reason
                if reason is RejectReason.ADMISSION_SHED and conn.version < 2:
                    # v1 peers predate the code; the closest v1 semantic
                    # is DROPPED (lost to queue pressure).
                    reason = RejectReason.DROPPED
                elif reason is RejectReason.RATE_LIMITED and conn.version < 3:
                    # Same downgrade for the v3 rate-limiter code: to a
                    # v<=2 peer it is a load-pressure drop.
                    reason = RejectReason.DROPPED
                elif reason is RejectReason.UNAVAILABLE and conn.version < 4:
                    # v<=3 peers predate the partition code; SHARD_DOWN is
                    # the closest older semantic (the owner of this output
                    # fiber cannot serve you right now).
                    reason = RejectReason.SHARD_DOWN
                conn.send(
                    proto.Reject(
                        seq,
                        reason,
                        -1 if outcome.slot is None else outcome.slot,
                    )
                )

        future.add_done_callback(_resolved)
