"""A fault-injecting TCP proxy for the wire protocol (the net chaos rig).

:class:`ChaosProxy` sits between a :class:`~repro.net.client.NetClient`
and a :class:`~repro.net.server.NetServer` and executes a seeded
:class:`~repro.faults.net.NetFaultPlan` against the byte stream — added
latency, slow-loris write stalls, mid-frame connection resets,
single-byte corruption, duplicate SUBMIT delivery, and full partitions —
so the liveness machinery (heartbeats, reconnect/redelivery, strict
framing, exactly-once dedup, ``UNAVAILABLE`` degradation) can be drilled
through the *real* TCP stack, deterministically.

Design notes:

* The proxy splits the stream on **frame boundaries** using only the
  length header (:data:`~repro.util.framing.FRAME_HEADER`) — it never
  verifies CRCs, so a corruption it injects reaches the endpoint's
  strict decoder intact.
* **Slot time** is tracked by decoding clean server→client frames
  (TICK_DONE / PONG carry the server slot) *before* faults are applied.
  One-shot events fire at the first eligible frame at-or-after their
  trigger slot, which keeps a plan meaningful even when wall-clock
  timing wobbles.
* Duplicate delivery is restricted to SUBMIT/SUBMIT2 frames: duplicating
  a TICK_ADVANCE would genuinely double-tick the service, which is a
  *different* experiment than "the network delivered a request twice".
* A partition starts at its trigger slot but heals after ``seconds`` of
  wall time, because slot time stops flowing while the link is down.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import TYPE_CHECKING

from repro.net import protocol as proto
from repro.util.framing import FRAME_HEADER, FRAME_HEADER_SIZE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.net import NetFaultPlan

__all__ = ["ChaosProxy", "FrameSplitter"]

_READ_CHUNK = 65536
_SUBMIT_TAGS = (int(proto.MsgType.SUBMIT), int(proto.MsgType.SUBMIT2))


class FrameSplitter:
    """Split a byte stream on frame boundaries without validating CRCs.

    Unlike :class:`~repro.util.framing.FrameDecoder` this never raises
    and never strips the envelope: :meth:`feed` yields complete frames
    (header + payload) verbatim, and :attr:`partial` exposes the
    unfinished tail so a proxy can forward a torn frame on EOF.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    @property
    def partial(self) -> bytes:
        """Bytes of the frame still being assembled (may be empty)."""
        return bytes(self._buf)

    def feed(self, data: bytes) -> list[bytes]:
        self._buf.extend(data)
        frames: list[bytes] = []
        while len(self._buf) >= FRAME_HEADER_SIZE:
            length, _crc = FRAME_HEADER.unpack_from(self._buf)
            end = FRAME_HEADER_SIZE + length
            if len(self._buf) < end:
                break
            frames.append(bytes(self._buf[:end]))
            del self._buf[:end]
        return frames


class _Link:
    """One proxied connection pair (client↔proxy↔server)."""

    __slots__ = ("client_writer", "server_writer", "tasks")

    def __init__(self, client_writer, server_writer) -> None:
        self.client_writer = client_writer
        self.server_writer = server_writer
        self.tasks: list[asyncio.Task] = []

    def abort(self) -> None:
        for w in (self.client_writer, self.server_writer):
            transport = w.transport
            if transport is not None:
                transport.abort()


class ChaosProxy:
    """A TCP proxy that injects a :class:`~repro.faults.net.NetFaultPlan`.

    Usage::

        proxy = ChaosProxy("127.0.0.1", server.port, plan)
        await proxy.start()
        client = await ResilientNetClient.connect("127.0.0.1", proxy.port)

    :attr:`stats` counts every fault actually fired; ``trace_path`` (a
    JSONL file, one line per relayed frame / fired fault) is the frame
    trace CI uploads when a chaos run fails.
    """

    def __init__(
        self,
        target_host: str,
        target_port: int,
        plan: "NetFaultPlan",
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        trace_path: str | None = None,
    ) -> None:
        plan.validate()
        self.target_host = target_host
        self.target_port = target_port
        self.plan = plan
        self.host = host
        self._requested_port = port
        self._server: asyncio.AbstractServer | None = None
        self._links: set[_Link] = set()
        #: Server slot as last observed on the wire (TICK_DONE / PONG).
        self.slot = 0
        #: Wall-clock deadline of the active partition (0 = none).
        self._partition_until = 0.0
        self._started_at = 0.0
        # One-shot events, ascending by trigger slot; popped when fired.
        self._stalls = sorted(plan.stalls, key=lambda e: e.slot)
        self._resets = sorted(plan.resets, key=lambda e: e.slot)
        self._corruptions = sorted(plan.corruptions, key=lambda e: e.slot)
        self._duplicates = sorted(plan.duplicates, key=lambda e: e.slot)
        self._partitions = sorted(plan.partitions, key=lambda e: e.slot)
        self._frame_index = 0
        self.stats = {
            "frames": 0,
            "latency_delays": 0,
            "stalls": 0,
            "resets": 0,
            "corruptions": 0,
            "duplicates": 0,
            "partitions": 0,
            "refused_connects": 0,
        }
        self._trace_path = trace_path
        self._trace = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        assert self._server is not None, "proxy not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "ChaosProxy":
        if self._trace_path is not None:
            self._trace = open(self._trace_path, "w", encoding="utf-8")
        self._started_at = time.monotonic()
        self._server = await asyncio.start_server(
            self._handle, self.host, self._requested_port
        )
        return self

    async def close(self) -> None:
        """Stop accepting, abort live links, reap pump tasks. Idempotent."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for link in list(self._links):
            link.abort()
        tasks = [t for link in self._links for t in link.tasks]
        for t in tasks:
            t.cancel()
        for t in tasks:
            try:
                await t
            except (asyncio.CancelledError, Exception):
                pass
        self._links.clear()
        if self._trace is not None:
            self._trace.close()
            self._trace = None

    async def __aenter__(self) -> "ChaosProxy":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- tracing -------------------------------------------------------------

    def _log(self, kind: str, direction: str, **extra) -> None:
        if self._trace is None:
            return
        record = {
            "t": round(time.monotonic() - self._started_at, 6),
            "slot": self.slot,
            "dir": direction,
            "kind": kind,
            **extra,
        }
        self._trace.write(json.dumps(record) + "\n")
        self._trace.flush()

    # -- partition handling --------------------------------------------------

    def _partition_active(self) -> bool:
        return time.monotonic() < self._partition_until

    def _maybe_start_partition(self) -> bool:
        """Fire a due partition: sever every link, start the wall timer."""
        if not self._partitions or self.slot < self._partitions[0].slot:
            return False
        ev = self._partitions.pop(0)
        self._partition_until = time.monotonic() + ev.seconds
        self.stats["partitions"] += 1
        self._log("partition", "-", seconds=ev.seconds)
        for link in list(self._links):
            link.abort()
        return True

    # -- connection handling -------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        if self._partition_active():
            self.stats["refused_connects"] += 1
            self._log("refused_connect", "c2s")
            writer.transport.abort()
            return
        try:
            up_reader, up_writer = await asyncio.open_connection(
                self.target_host, self.target_port
            )
        except OSError:
            writer.transport.abort()
            return
        link = _Link(writer, up_writer)
        self._links.add(link)
        loop = asyncio.get_running_loop()
        link.tasks = [
            loop.create_task(
                self._pump(link, "c2s", reader, up_writer),
                name="repro-chaos-c2s",
            ),
            loop.create_task(
                self._pump(link, "s2c", up_reader, writer),
                name="repro-chaos-s2c",
            ),
        ]
        try:
            await asyncio.gather(*link.tasks, return_exceptions=True)
        finally:
            link.abort()
            self._links.discard(link)

    async def _pump(self, link: _Link, direction: str, reader, writer) -> None:
        splitter = FrameSplitter()
        try:
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    # Forward a torn tail so "closed mid-frame" is seen
                    # by the endpoint, not swallowed by the proxy.
                    if splitter.partial:
                        writer.write(splitter.partial)
                        await writer.drain()
                    break
                for frame in splitter.feed(data):
                    await self._relay(link, direction, frame, writer)
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        finally:
            transport = writer.transport
            if transport is not None:
                try:
                    writer.write_eof()
                except (OSError, RuntimeError, AttributeError):
                    transport.abort()

    # -- fault application ---------------------------------------------------

    def _observe(self, direction: str, frame: bytes) -> int:
        """Track slot time from clean server→client traffic; returns the
        frame's message tag (or -1)."""
        if len(frame) <= FRAME_HEADER_SIZE:
            return -1
        tag = frame[FRAME_HEADER_SIZE]
        if direction == "s2c" and tag in (
            int(proto.MsgType.TICK_DONE), int(proto.MsgType.PONG),
        ):
            try:
                msg = proto.decode_message(frame[FRAME_HEADER_SIZE:])
            except Exception:
                return tag
            self.slot = max(self.slot, msg.slot)
        return tag

    @staticmethod
    def _due(events: list, slot: int) -> bool:
        return bool(events) and slot >= events[0].slot

    async def _relay(
        self, link: _Link, direction: str, frame: bytes, writer
    ) -> None:
        tag = self._observe(direction, frame)
        self.stats["frames"] += 1
        self._frame_index += 1
        if self._maybe_start_partition():
            return  # the link was just severed; drop the frame
        # Mid-frame reset: write half, abort both sides.
        if self._due(self._resets, self.slot) and (
            self._resets[0].direction == direction
        ):
            self._resets.pop(0)
            self.stats["resets"] += 1
            self._log("reset", direction, tag=tag)
            writer.write(frame[: max(1, len(frame) // 2)])
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            link.abort()
            return
        # Single-byte payload corruption (CRC must catch it downstream).
        if self._due(self._corruptions, self.slot) and (
            self._corruptions[0].direction == direction
            and len(frame) > FRAME_HEADER_SIZE
        ):
            ev = self._corruptions.pop(0)
            mutated = bytearray(frame)
            payload_len = len(frame) - FRAME_HEADER_SIZE
            pos = FRAME_HEADER_SIZE + (ev.offset % payload_len)
            mutated[pos] ^= ev.mask
            frame = bytes(mutated)
            self.stats["corruptions"] += 1
            self._log("corrupt", direction, tag=tag, pos=pos, mask=ev.mask)
        # Latency spike: hold the frame (delay + deterministic jitter).
        for ev in self.plan.latencies:
            if ev.active_at(self.slot):
                self.stats["latency_delays"] += 1
                jitter = ev.jitter * ((self._frame_index % 7) / 7.0)
                await asyncio.sleep(ev.delay + jitter)
                break
        # Slow-loris write stall: dribble the frame out byte-chunked.
        if self._due(self._stalls, self.slot) and (
            self._stalls[0].direction == direction
        ):
            ev = self._stalls.pop(0)
            self.stats["stalls"] += 1
            self._log("stall", direction, tag=tag, seconds=ev.seconds)
            n_chunks = min(len(frame), 8)
            step = -(-len(frame) // n_chunks)
            pause = ev.seconds / n_chunks
            for i in range(0, len(frame), step):
                writer.write(frame[i : i + step])
                await writer.drain()
                await asyncio.sleep(pause)
            self._log("frame", direction, tag=tag, len=len(frame))
            return
        # Duplicate delivery: only SUBMIT frames (duplicating a
        # TICK_ADVANCE would double-tick the service — a different bug).
        if (
            direction == "c2s"
            and tag in _SUBMIT_TAGS
            and self._due(self._duplicates, self.slot)
        ):
            self._duplicates.pop(0)
            self.stats["duplicates"] += 1
            self._log("duplicate", direction, tag=tag)
            writer.write(frame)
        writer.write(frame)
        await writer.drain()
        self._log("frame", direction, tag=tag, len=len(frame))
