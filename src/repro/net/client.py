"""The TCP client for the scheduling service's wire protocol.

:class:`NetClient` speaks :mod:`repro.net.protocol` over the shared
frame codec: HELLO/WELCOME handshake at connect, pipelined SUBMITs
correlated by ``seq``, TICK_ADVANCE driving, BYE on close.

Shutdown hygiene is a contract here, with a regression test
(``tests/test_net_server.py``): closing the client — or cancelling an
in-flight :meth:`submit` — must close transports cleanly and leave no
pending tasks behind (no "Task was destroyed but it is pending"
warnings, no leaked file descriptors under repeated connect/cancel
cycles).  Concretely: ``close()`` cancels and *awaits* the reader task,
cancelling a submit detaches its pending future before re-raising, and
abandoned futures are cancelled (never left with an unretrieved
exception).
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import TYPE_CHECKING

from repro.errors import ConnectionLostError, FramingError, ProtocolError
from repro.net import protocol as proto
from repro.service.server import RejectReason
from repro.util.framing import FrameDecoder, encode_frame

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.distributed import SlotRequest

__all__ = ["NetClient", "ResilientNetClient", "RETRYABLE_NET_ERRORS"]

_READ_CHUNK = 65536

#: Exception types that mean "the wire died, the request may still be
#: in doubt" — :class:`ResilientNetClient` reconnects and redelivers on
#: these.  A plain :class:`ProtocolError` (server-side ERROR reply) is
#: deliberately absent: the server answered, retrying would loop.
RETRYABLE_NET_ERRORS = (
    ConnectionLostError,
    FramingError,
    ConnectionError,
    asyncio.TimeoutError,
    OSError,
)


class NetClient:
    """One connection to a :class:`~repro.net.server.NetServer`.

    Build with :meth:`connect` (or ``async with NetClient.connect(...)``
    via :meth:`connect` + context manager).  After the handshake,
    :attr:`version`, :attr:`n_fibers` and :attr:`k` describe the server.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        welcome: proto.Welcome,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.version = welcome.version
        self.n_fibers = welcome.n_fibers
        self.k = welcome.k
        self._seq = 0
        self._pending: "dict[int, asyncio.Future[proto.Grant | proto.Reject]]" = {}
        self._tick_waiters: "deque[asyncio.Future[proto.TickDone]]" = deque()
        self._ping_waiters: "dict[int, asyncio.Future[proto.Pong]]" = {}
        self._ping_token = 0
        #: The server's slot as last reported by TICK_DONE or PONG
        #: (``-1`` until either arrives).  A reconnecting client PINGs to
        #: resync this before re-driving ticks.
        self.server_slot = -1
        self._closing = False
        self._conn_error: Exception | None = None
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop(), name="repro-netclient-reader"
        )

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        versions: tuple[int, ...] = proto.PROTOCOL_VERSIONS,
        timeout: float = 10.0,
    ) -> "NetClient":
        """Open a connection and complete the version handshake."""
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout
        )
        try:
            writer.write(
                encode_frame(proto.encode_message(proto.Hello(tuple(versions))))
            )
            await writer.drain()
            decoder = FrameDecoder(max_payload=proto.MAX_MESSAGE)
            payloads: list[bytes] = []
            while not payloads:
                data = await asyncio.wait_for(reader.read(_READ_CHUNK), timeout)
                if not data:
                    raise ProtocolError("server closed during handshake")
                payloads = decoder.feed(data)
            msg = proto.decode_message(payloads[0])
            if isinstance(msg, proto.ErrorMsg):
                raise ProtocolError(
                    f"handshake refused (code {msg.code}): {msg.message}"
                )
            if not isinstance(msg, proto.Welcome):
                raise ProtocolError(
                    f"expected WELCOME, got {type(msg).__name__}"
                )
        except BaseException:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass
            raise
        client = cls(reader, writer, msg)
        # Frames already buffered behind the WELCOME belong to the reader.
        for extra in payloads[1:]:
            client._dispatch(proto.decode_message(extra))
        return client

    async def __aenter__(self) -> "NetClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    @property
    def closed(self) -> bool:
        return self._closing

    @property
    def healthy(self) -> bool:
        """True while the connection is open and has seen no transport
        or protocol failure."""
        return not self._closing and self._conn_error is None

    def abort(self, reason: str = "connection aborted") -> None:
        """Kill the transport *now* (liveness failure, chaos).

        Unlike :meth:`close` this sends nothing: the reader wakes on the
        reset and every in-flight future fails with
        :class:`~repro.errors.ConnectionLostError` — the retryable kind —
        so a resilient wrapper reconnects instead of surfacing the error.
        """
        if self._closing:
            return
        if self._conn_error is None:
            self._conn_error = ConnectionLostError(reason)
        transport = self._writer.transport
        if transport is not None:
            transport.abort()

    async def close(self) -> None:
        """Send BYE (best-effort), tear the connection down, reap the
        reader task, and cancel anything still pending.  Idempotent."""
        if self._closing:
            return
        self._closing = True
        try:
            self._writer.write(encode_frame(proto.encode_message(proto.Bye())))
            await self._writer.drain()
        except (ConnectionError, BrokenPipeError, OSError):
            pass
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, BrokenPipeError, OSError):
            pass
        self._fail_pending(None)

    def _fail_pending(self, error: Exception | None) -> None:
        """Resolve every in-flight future: with ``error`` when the
        connection died underneath us, by cancellation on clean close
        (cancelled futures never warn about unretrieved exceptions)."""
        pending = (
            list(self._pending.values())
            + list(self._tick_waiters)
            + list(self._ping_waiters.values())
        )
        self._pending.clear()
        self._tick_waiters.clear()
        self._ping_waiters.clear()
        for fut in pending:
            if fut.done():
                continue
            if error is None:
                fut.cancel()
            else:
                fut.set_exception(error)

    # -- requests ------------------------------------------------------------

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _check_open(self) -> None:
        if self._closing:
            raise ProtocolError("client is closed")
        if self._conn_error is not None:
            raise self._conn_error

    def _send(self, msg: "proto.Message") -> None:
        self._writer.write(encode_frame(proto.encode_message(msg)))

    def submit_nowait(
        self,
        request: "SlotRequest",
        *,
        timeout_ticks: int = -1,
        request_id: str = "",
    ) -> "asyncio.Future[proto.Grant | proto.Reject]":
        """Send one SUBMIT; the future resolves with the server's
        :class:`~repro.net.protocol.Grant` or
        :class:`~repro.net.protocol.Reject` (or raises ProtocolError on a
        server-side ERROR)."""
        self._check_open()
        if request.tenant and self.version < 2:
            raise ProtocolError(
                f"tenant {request.tenant} needs protocol >= 2; the server "
                f"negotiated version {self.version}"
            )
        seq = self._next_seq()
        fut: "asyncio.Future[proto.Grant | proto.Reject]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[seq] = fut
        self._send(
            proto.Submit(
                seq,
                request.input_fiber,
                request.wavelength,
                request.output_fiber,
                duration=request.duration,
                priority=request.priority,
                timeout_ticks=timeout_ticks,
                request_id=request_id,
                tenant=request.tenant,
            )
        )
        return fut

    async def submit(
        self,
        request: "SlotRequest",
        *,
        timeout_ticks: int = -1,
        request_id: str = "",
    ) -> "proto.Grant | proto.Reject":
        """Submit and await the outcome.  Cancelling this coroutine
        detaches the in-flight future cleanly (hygiene contract)."""
        fut = self.submit_nowait(
            request, timeout_ticks=timeout_ticks, request_id=request_id
        )
        seq = self._seq
        try:
            await self._writer.drain()
            return await fut
        except asyncio.CancelledError:
            self._pending.pop(seq, None)
            fut.cancel()
            raise

    async def migrate(self, shard: int, destination: int) -> proto.Migrated:
        """Ask the server to live-migrate ``shard`` to worker
        ``destination`` (protocol ≥ 3 admin op); awaits the MIGRATED
        report.  Raises :class:`~repro.errors.ProtocolError` if the
        server refuses (old protocol, bad move, backend without
        migration support)."""
        self._check_open()
        if self.version < 3:
            raise ProtocolError(
                f"MIGRATE needs protocol >= 3; the server negotiated "
                f"version {self.version}"
            )
        seq = self._next_seq()
        fut: "asyncio.Future[proto.Migrated]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[seq] = fut
        self._send(proto.Migrate(seq, shard, destination))
        try:
            await self._writer.drain()
            return await fut
        except asyncio.CancelledError:
            self._pending.pop(seq, None)
            fut.cancel()
            raise

    async def ping(self) -> proto.Pong:
        """Heartbeat (protocol ≥ 4): awaits the PONG echoing our token.

        The PONG carries the server's slot, refreshing
        :attr:`server_slot` — reconnect logic pings before re-driving
        ticks so advancement stays idempotent."""
        self._check_open()
        if self.version < 4:
            raise ProtocolError(
                f"PING needs protocol >= 4; the server negotiated "
                f"version {self.version}"
            )
        self._ping_token += 1
        token = self._ping_token
        fut: "asyncio.Future[proto.Pong]" = (
            asyncio.get_running_loop().create_future()
        )
        self._ping_waiters[token] = fut
        self._send(proto.Ping(token))
        try:
            await self._writer.drain()
            return await fut
        except asyncio.CancelledError:
            self._ping_waiters.pop(token, None)
            fut.cancel()
            raise

    async def tick(self, count: int = 1) -> proto.TickDone:
        """Ask the server to run ``count`` slot ticks; awaits TICK_DONE."""
        self._check_open()
        fut: "asyncio.Future[proto.TickDone]" = (
            asyncio.get_running_loop().create_future()
        )
        self._tick_waiters.append(fut)
        self._send(proto.TickAdvance(count))
        try:
            await self._writer.drain()
            return await fut
        except asyncio.CancelledError:
            try:
                self._tick_waiters.remove(fut)
            except ValueError:
                pass
            fut.cancel()
            raise

    # -- the reader task -----------------------------------------------------

    async def _read_loop(self) -> None:
        decoder = FrameDecoder(max_payload=proto.MAX_MESSAGE)
        error: Exception | None = None
        try:
            while True:
                data = await self._reader.read(_READ_CHUNK)
                if not data:
                    if not decoder.at_boundary:
                        error = ConnectionLostError("server closed mid-frame")
                    elif not self._closing:
                        error = ConnectionLostError("server closed")
                    break
                for payload in decoder.feed(data):
                    msg = proto.decode_message(payload)
                    if isinstance(msg, proto.Bye):
                        if not self._closing:
                            # Server-initiated goodbye (idle reap, drain):
                            # the connection is gone for all future calls,
                            # and retryably so — a resilient wrapper should
                            # reconnect, not surface an error.
                            error = ConnectionLostError(
                                "server closed the connection (BYE)"
                            )
                        return
                    self._dispatch(msg)
        except (FramingError, ProtocolError) as exc:
            error = exc
        except (ConnectionError, OSError) as exc:
            if not self._closing:
                error = ConnectionLostError(f"connection lost: {exc}")
        finally:
            # abort() may already have pinned a cause; keep the first.
            if error is None:
                error = self._conn_error if not self._closing else None
            elif self._conn_error is None:
                self._conn_error = error
            else:
                error = self._conn_error
            self._fail_pending(error)

    def _dispatch(self, msg: "proto.Message") -> None:
        if isinstance(msg, (proto.Grant, proto.Reject, proto.Migrated)):
            fut = self._pending.pop(msg.seq, None)
            if fut is not None and not fut.done():
                fut.set_result(msg)
        elif isinstance(msg, proto.TickDone):
            self.server_slot = max(self.server_slot, msg.slot)
            if self._tick_waiters:
                fut = self._tick_waiters.popleft()
                if not fut.done():
                    fut.set_result(msg)
        elif isinstance(msg, proto.Pong):
            self.server_slot = max(self.server_slot, msg.slot)
            fut = self._ping_waiters.pop(msg.token, None)
            if fut is not None and not fut.done():
                fut.set_result(msg)
        elif isinstance(msg, proto.ErrorMsg):
            if msg.seq == 0:
                if msg.code == proto.ErrorCode.BAD_FRAME:
                    # The server killed the connection because *our*
                    # bytes arrived corrupt — wire damage, retryable.
                    raise ConnectionLostError(
                        f"server dropped corrupt stream: {msg.message}"
                    )
                raise ProtocolError(
                    f"connection-level error {msg.code}: {msg.message}"
                )
            fut = self._pending.pop(msg.seq, None)
            if fut is not None and not fut.done():
                fut.set_exception(
                    ProtocolError(f"error {msg.code}: {msg.message}")
                )
        else:
            raise ProtocolError(
                f"unexpected {type(msg).__name__} from server"
            )


class ResilientNetClient:
    """A self-healing façade over :class:`NetClient` (protocol ≥ 4).

    Survives the faults :class:`repro.net.chaos.ChaosProxy` injects —
    resets, corruption-killed connections, partitions — by reconnecting
    with exponential backoff and *redelivering* in-doubt requests under
    their original ``request_id``, so the server's exactly-once dedup
    (:meth:`repro.service.edge.SubmissionEdge.check_duplicate`) replays
    the recorded outcome instead of double-granting.

    The liveness contract:

    * Every submit carries a ``request_id`` (caller-supplied or
      auto-generated), making redelivery safe.
    * ``timeout_ticks`` deadlines are pinned to an absolute *server slot*
      at first send; redelivery shrinks the remaining budget, so a
      request cannot outlive its deadline by riding a reconnect.  An
      in-doubt DUPLICATE (redelivery raced the still-pending original)
      waits one tick and resubmits — dedup then replays the real outcome.
    * :meth:`advance_to` is the idempotent tick driver: it PINGs after
      reconnect to learn the true server slot and only requests the
      missing ticks, never double-ticking.
    * When the reconnect deadline is exhausted, :meth:`submit` degrades
      gracefully: it resolves with a synthesized
      ``Reject(reason=UNAVAILABLE, slot=-1)`` instead of hanging on a
      partition (tick driving raises
      :class:`~repro.errors.ConnectionLostError` instead — there is no
      meaningful degraded tick).
    * An optional heartbeat task PINGs every ``heartbeat_interval``
      seconds and aborts the connection after ``liveness_timeout``
      without a PONG; the next operation then reconnects.

    The shutdown-hygiene contract of :class:`NetClient` carries over:
    :meth:`close` reaps the heartbeat task and the inner client.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        versions: tuple[int, ...] = proto.PROTOCOL_VERSIONS,
        connect_timeout: float = 10.0,
        reconnect_backoff: float = 0.05,
        reconnect_backoff_max: float = 1.0,
        reconnect_deadline: float = 10.0,
        heartbeat_interval: float | None = None,
        liveness_timeout: float | None = None,
        id_prefix: str = "rc",
    ) -> None:
        for name, value in (
            ("connect_timeout", connect_timeout),
            ("reconnect_backoff", reconnect_backoff),
            ("reconnect_backoff_max", reconnect_backoff_max),
            ("reconnect_deadline", reconnect_deadline),
        ):
            if value <= 0:
                raise ProtocolError(f"{name} must be > 0, got {value}")
        if heartbeat_interval is not None and heartbeat_interval <= 0:
            raise ProtocolError(
                f"heartbeat_interval must be > 0, got {heartbeat_interval}"
            )
        self.host = host
        self.port = port
        self.versions = tuple(versions)
        self.connect_timeout = connect_timeout
        self.reconnect_backoff = reconnect_backoff
        self.reconnect_backoff_max = reconnect_backoff_max
        self.reconnect_deadline = reconnect_deadline
        self.heartbeat_interval = heartbeat_interval
        self.liveness_timeout = (
            liveness_timeout
            if liveness_timeout is not None
            else (None if heartbeat_interval is None else 2 * heartbeat_interval)
        )
        self.id_prefix = id_prefix
        self.version = 0
        self.n_fibers = 0
        self.k = 0
        #: Completed reconnects (0 while the first connection lives).
        self.reconnects = 0
        #: Synthesized UNAVAILABLE rejects (reconnect budget exhausted).
        self.unavailable_rejects = 0
        self._client: NetClient | None = None
        self._conn_lock = asyncio.Lock()
        self._hb_task: asyncio.Task | None = None
        self._closed = False
        self._had_connection = False
        self._auto_seq = 0
        self._ticked = asyncio.Event()

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    async def connect(cls, host: str, port: int, **kwargs) -> "ResilientNetClient":
        """Connect (retrying within the reconnect deadline) and start the
        heartbeat task if one is configured."""
        self = cls(host, port, **kwargs)
        await self._ensure_connected()
        if self.heartbeat_interval is not None:
            self._hb_task = asyncio.get_running_loop().create_task(
                self._heartbeat_loop(), name="repro-netclient-heartbeat"
            )
        return self

    async def __aenter__(self) -> "ResilientNetClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def server_slot(self) -> int:
        """Last slot the server reported (``-1`` before the first PONG)."""
        return -1 if self._client is None else self._client.server_slot

    async def close(self) -> None:
        """Reap the heartbeat, close the inner client, wake waiters."""
        if self._closed:
            return
        self._closed = True
        if self._hb_task is not None:
            self._hb_task.cancel()
            try:
                await self._hb_task
            except (asyncio.CancelledError, Exception):
                pass
        async with self._conn_lock:
            if self._client is not None:
                await self._client.close()
                self._client = None
        self._signal_tick()

    # -- connection management -----------------------------------------------

    async def _ensure_connected(self) -> NetClient:
        """Return a healthy inner client, reconnecting with backoff.

        Raises :class:`~repro.errors.ConnectionLostError` once
        ``reconnect_deadline`` seconds of attempts fail — the caller
        decides whether that degrades (submit) or propagates (ticking).
        """
        if self._closed:
            raise ProtocolError("client is closed")
        c = self._client
        if c is not None and c.healthy:
            return c
        async with self._conn_lock:
            if self._closed:
                raise ProtocolError("client is closed")
            c = self._client
            if c is not None and c.healthy:
                return c
            loop = asyncio.get_running_loop()
            start = loop.time()
            backoff = self.reconnect_backoff
            attempts = 0
            while True:
                if self._client is not None:
                    old, self._client = self._client, None
                    await old.close()
                try:
                    c = await NetClient.connect(
                        self.host,
                        self.port,
                        versions=self.versions,
                        timeout=self.connect_timeout,
                    )
                    self._client = c
                    if c.version >= 4:
                        # Resync the server slot before anyone re-drives
                        # ticks or re-pins a deadline.
                        await c.ping()
                except (ProtocolError, *RETRYABLE_NET_ERRORS) as exc:
                    attempts += 1
                    if loop.time() - start + backoff > self.reconnect_deadline:
                        raise ConnectionLostError(
                            f"reconnect to {self.host}:{self.port} failed for "
                            f"{self.reconnect_deadline}s ({attempts} attempts): "
                            f"{exc}"
                        ) from exc
                    await asyncio.sleep(backoff)
                    backoff = min(backoff * 2, self.reconnect_backoff_max)
                    continue
                if self._had_connection:
                    self.reconnects += 1
                self._had_connection = True
                self.version, self.n_fibers, self.k = (
                    c.version, c.n_fibers, c.k,
                )
                return c

    async def _heartbeat_loop(self) -> None:
        while not self._closed:
            await asyncio.sleep(self.heartbeat_interval)
            c = self._client
            if c is None or not c.healthy or c.version < 4:
                continue
            try:
                await asyncio.wait_for(c.ping(), self.liveness_timeout)
            except (ProtocolError, *RETRYABLE_NET_ERRORS):
                c.abort(
                    f"no PONG within {self.liveness_timeout}s liveness window"
                )

    def _signal_tick(self) -> None:
        old = self._ticked
        self._ticked = asyncio.Event()
        old.set()

    # -- requests ------------------------------------------------------------

    async def submit(
        self,
        request: "SlotRequest",
        *,
        timeout_ticks: int = -1,
        request_id: str = "",
        deadline_slot: int | None = None,
    ) -> "proto.Grant | proto.Reject":
        """Submit with at-most-once effect and graceful degradation.

        Resolves with the server's Grant/Reject; on reconnect-budget
        exhaustion resolves with a synthesized
        ``Reject(reason=UNAVAILABLE, slot=-1)`` rather than hanging.

        ``deadline_slot`` pins the absolute expiry slot; otherwise a
        non-negative ``timeout_ticks`` is converted against the server
        slot known when the coroutine first runs.  Callers racing a tick
        driver (the chaos drill) should pin ``deadline_slot`` themselves
        from :attr:`server_slot` *before* scheduling the coroutine, so
        the deadline cannot slip onto a later slot.
        """
        if self._closed:
            raise ProtocolError("client is closed")
        if deadline_slot is not None and deadline_slot < 0:
            raise ProtocolError(
                f"deadline_slot must be >= 0, got {deadline_slot}"
            )
        if not request_id:
            self._auto_seq += 1
            request_id = f"{self.id_prefix}-{self._auto_seq}"
        while True:
            try:
                client = await self._ensure_connected()
            except ConnectionLostError:
                self.unavailable_rejects += 1
                return proto.Reject(0, RejectReason.UNAVAILABLE, slot=-1)
            if deadline_slot is None and timeout_ticks >= 0:
                deadline_slot = max(client.server_slot, 0) + timeout_ticks
            tt = timeout_ticks
            if deadline_slot is not None:
                tt = max(0, deadline_slot - max(client.server_slot, 0))
            try:
                reply = await client.submit(
                    request, timeout_ticks=tt, request_id=request_id
                )
            except RETRYABLE_NET_ERRORS:
                continue  # reconnect and redeliver under the same id
            if (
                isinstance(reply, proto.Reject)
                and reply.reason is RejectReason.DUPLICATE
            ):
                # In doubt.  Either our redelivery raced the still-pending
                # original, or the *network* delivered our SUBMIT twice
                # and the immediate DUPLICATE reject outran the real
                # outcome (both carry our seq).  The wrapper never reuses
                # a request_id across logical requests, so a DUPLICATE
                # can only mean "the original is still in flight": wait
                # for a tick to resolve it, then resubmit — dedup replays
                # the recorded grant (or treats a released reject as a
                # fresh, already-expired request).
                ev = self._ticked
                try:
                    await asyncio.wait_for(ev.wait(), 5.0)
                except asyncio.TimeoutError:
                    pass
                continue
            return reply

    async def advance_to(self, target_slot: int) -> int:
        """Idempotently drive the server to ``target_slot``.

        After any reconnect the handshake PING re-learns the true server
        slot, so only the missing ticks are requested — a tick burst
        severed mid-flight is never replayed.  Returns the server slot
        (≥ ``target_slot``).  Raises
        :class:`~repro.errors.ConnectionLostError` when the reconnect
        budget is exhausted.
        """
        if target_slot < 0:
            raise ProtocolError(f"target_slot must be >= 0, got {target_slot}")
        while True:
            client = await self._ensure_connected()
            if client.version < 4:
                raise ProtocolError(
                    "advance_to needs protocol >= 4 (PING slot resync); "
                    f"the server negotiated version {client.version}"
                )
            if client.server_slot >= target_slot:
                return client.server_slot
            try:
                await client.tick(target_slot - client.server_slot)
            except RETRYABLE_NET_ERRORS:
                continue
            self._signal_tick()

    async def tick(self, count: int = 1) -> int:
        """Run ``count`` further ticks (idempotent via :meth:`advance_to`);
        returns the resulting server slot."""
        if count < 1:
            raise ProtocolError(f"count must be >= 1, got {count}")
        client = await self._ensure_connected()
        return await self.advance_to(max(client.server_slot, 0) + count)
