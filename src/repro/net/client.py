"""The TCP client for the scheduling service's wire protocol.

:class:`NetClient` speaks :mod:`repro.net.protocol` over the shared
frame codec: HELLO/WELCOME handshake at connect, pipelined SUBMITs
correlated by ``seq``, TICK_ADVANCE driving, BYE on close.

Shutdown hygiene is a contract here, with a regression test
(``tests/test_net_server.py``): closing the client — or cancelling an
in-flight :meth:`submit` — must close transports cleanly and leave no
pending tasks behind (no "Task was destroyed but it is pending"
warnings, no leaked file descriptors under repeated connect/cancel
cycles).  Concretely: ``close()`` cancels and *awaits* the reader task,
cancelling a submit detaches its pending future before re-raising, and
abandoned futures are cancelled (never left with an unretrieved
exception).
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import TYPE_CHECKING

from repro.errors import FramingError, ProtocolError
from repro.net import protocol as proto
from repro.util.framing import FrameDecoder, encode_frame

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.distributed import SlotRequest

__all__ = ["NetClient"]

_READ_CHUNK = 65536


class NetClient:
    """One connection to a :class:`~repro.net.server.NetServer`.

    Build with :meth:`connect` (or ``async with NetClient.connect(...)``
    via :meth:`connect` + context manager).  After the handshake,
    :attr:`version`, :attr:`n_fibers` and :attr:`k` describe the server.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        welcome: proto.Welcome,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.version = welcome.version
        self.n_fibers = welcome.n_fibers
        self.k = welcome.k
        self._seq = 0
        self._pending: "dict[int, asyncio.Future[proto.Grant | proto.Reject]]" = {}
        self._tick_waiters: "deque[asyncio.Future[proto.TickDone]]" = deque()
        self._closing = False
        self._conn_error: Exception | None = None
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop(), name="repro-netclient-reader"
        )

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        *,
        versions: tuple[int, ...] = proto.PROTOCOL_VERSIONS,
        timeout: float = 10.0,
    ) -> "NetClient":
        """Open a connection and complete the version handshake."""
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout
        )
        try:
            writer.write(
                encode_frame(proto.encode_message(proto.Hello(tuple(versions))))
            )
            await writer.drain()
            decoder = FrameDecoder(max_payload=proto.MAX_MESSAGE)
            payloads: list[bytes] = []
            while not payloads:
                data = await asyncio.wait_for(reader.read(_READ_CHUNK), timeout)
                if not data:
                    raise ProtocolError("server closed during handshake")
                payloads = decoder.feed(data)
            msg = proto.decode_message(payloads[0])
            if isinstance(msg, proto.ErrorMsg):
                raise ProtocolError(
                    f"handshake refused (code {msg.code}): {msg.message}"
                )
            if not isinstance(msg, proto.Welcome):
                raise ProtocolError(
                    f"expected WELCOME, got {type(msg).__name__}"
                )
        except BaseException:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass
            raise
        client = cls(reader, writer, msg)
        # Frames already buffered behind the WELCOME belong to the reader.
        for extra in payloads[1:]:
            client._dispatch(proto.decode_message(extra))
        return client

    async def __aenter__(self) -> "NetClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    @property
    def closed(self) -> bool:
        return self._closing

    async def close(self) -> None:
        """Send BYE (best-effort), tear the connection down, reap the
        reader task, and cancel anything still pending.  Idempotent."""
        if self._closing:
            return
        self._closing = True
        try:
            self._writer.write(encode_frame(proto.encode_message(proto.Bye())))
            await self._writer.drain()
        except (ConnectionError, BrokenPipeError, OSError):
            pass
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, BrokenPipeError, OSError):
            pass
        self._fail_pending(None)

    def _fail_pending(self, error: Exception | None) -> None:
        """Resolve every in-flight future: with ``error`` when the
        connection died underneath us, by cancellation on clean close
        (cancelled futures never warn about unretrieved exceptions)."""
        pending = list(self._pending.values()) + list(self._tick_waiters)
        self._pending.clear()
        self._tick_waiters.clear()
        for fut in pending:
            if fut.done():
                continue
            if error is None:
                fut.cancel()
            else:
                fut.set_exception(error)

    # -- requests ------------------------------------------------------------

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _check_open(self) -> None:
        if self._closing:
            raise ProtocolError("client is closed")
        if self._conn_error is not None:
            raise self._conn_error

    def _send(self, msg: "proto.Message") -> None:
        self._writer.write(encode_frame(proto.encode_message(msg)))

    def submit_nowait(
        self,
        request: "SlotRequest",
        *,
        timeout_ticks: int = -1,
        request_id: str = "",
    ) -> "asyncio.Future[proto.Grant | proto.Reject]":
        """Send one SUBMIT; the future resolves with the server's
        :class:`~repro.net.protocol.Grant` or
        :class:`~repro.net.protocol.Reject` (or raises ProtocolError on a
        server-side ERROR)."""
        self._check_open()
        if request.tenant and self.version < 2:
            raise ProtocolError(
                f"tenant {request.tenant} needs protocol >= 2; the server "
                f"negotiated version {self.version}"
            )
        seq = self._next_seq()
        fut: "asyncio.Future[proto.Grant | proto.Reject]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[seq] = fut
        self._send(
            proto.Submit(
                seq,
                request.input_fiber,
                request.wavelength,
                request.output_fiber,
                duration=request.duration,
                priority=request.priority,
                timeout_ticks=timeout_ticks,
                request_id=request_id,
                tenant=request.tenant,
            )
        )
        return fut

    async def submit(
        self,
        request: "SlotRequest",
        *,
        timeout_ticks: int = -1,
        request_id: str = "",
    ) -> "proto.Grant | proto.Reject":
        """Submit and await the outcome.  Cancelling this coroutine
        detaches the in-flight future cleanly (hygiene contract)."""
        fut = self.submit_nowait(
            request, timeout_ticks=timeout_ticks, request_id=request_id
        )
        seq = self._seq
        try:
            await self._writer.drain()
            return await fut
        except asyncio.CancelledError:
            self._pending.pop(seq, None)
            fut.cancel()
            raise

    async def migrate(self, shard: int, destination: int) -> proto.Migrated:
        """Ask the server to live-migrate ``shard`` to worker
        ``destination`` (protocol ≥ 3 admin op); awaits the MIGRATED
        report.  Raises :class:`~repro.errors.ProtocolError` if the
        server refuses (old protocol, bad move, backend without
        migration support)."""
        self._check_open()
        if self.version < 3:
            raise ProtocolError(
                f"MIGRATE needs protocol >= 3; the server negotiated "
                f"version {self.version}"
            )
        seq = self._next_seq()
        fut: "asyncio.Future[proto.Migrated]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[seq] = fut
        self._send(proto.Migrate(seq, shard, destination))
        try:
            await self._writer.drain()
            return await fut
        except asyncio.CancelledError:
            self._pending.pop(seq, None)
            fut.cancel()
            raise

    async def tick(self, count: int = 1) -> proto.TickDone:
        """Ask the server to run ``count`` slot ticks; awaits TICK_DONE."""
        self._check_open()
        fut: "asyncio.Future[proto.TickDone]" = (
            asyncio.get_running_loop().create_future()
        )
        self._tick_waiters.append(fut)
        self._send(proto.TickAdvance(count))
        try:
            await self._writer.drain()
            return await fut
        except asyncio.CancelledError:
            try:
                self._tick_waiters.remove(fut)
            except ValueError:
                pass
            fut.cancel()
            raise

    # -- the reader task -----------------------------------------------------

    async def _read_loop(self) -> None:
        decoder = FrameDecoder(max_payload=proto.MAX_MESSAGE)
        error: Exception | None = None
        try:
            while True:
                data = await self._reader.read(_READ_CHUNK)
                if not data:
                    if not decoder.at_boundary:
                        error = ProtocolError("server closed mid-frame")
                    elif not self._closing:
                        error = ConnectionResetError("server closed")
                    break
                for payload in decoder.feed(data):
                    msg = proto.decode_message(payload)
                    if isinstance(msg, proto.Bye):
                        return
                    self._dispatch(msg)
        except (FramingError, ProtocolError) as exc:
            error = exc
        except (ConnectionError, OSError) as exc:
            if not self._closing:
                error = ProtocolError(f"connection lost: {exc}")
        finally:
            if error is not None:
                self._conn_error = error
            self._fail_pending(error)

    def _dispatch(self, msg: "proto.Message") -> None:
        if isinstance(msg, (proto.Grant, proto.Reject, proto.Migrated)):
            fut = self._pending.pop(msg.seq, None)
            if fut is not None and not fut.done():
                fut.set_result(msg)
        elif isinstance(msg, proto.TickDone):
            if self._tick_waiters:
                fut = self._tick_waiters.popleft()
                if not fut.done():
                    fut.set_result(msg)
        elif isinstance(msg, proto.ErrorMsg):
            if msg.seq == 0:
                raise ProtocolError(
                    f"connection-level error {msg.code}: {msg.message}"
                )
            fut = self._pending.pop(msg.seq, None)
            if fut is not None and not fut.done():
                fut.set_exception(
                    ProtocolError(f"error {msg.code}: {msg.message}")
                )
        else:
            raise ProtocolError(
                f"unexpected {type(msg).__name__} from server"
            )
