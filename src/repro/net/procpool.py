"""Shard workers in OS processes: spawn, RPC, crash recovery, respawn.

Each worker process owns the shards the consistent-hash ring places on
it (:mod:`repro.net.placement`): their ``busy[]`` channel clocks, their
scheduler, and — when a journal directory is given — one write-ahead
journal per shard in the worker's **own directory**
(``<journal_dir>/worker-<i>/shard-<o>.wal``), so two processes never
share a file.

The parent drives workers over ``multiprocessing`` pipes with a tiny
request/response protocol (tuples, one in flight per worker).  The
correctness contract under crashes is the same write-ahead discipline as
PR 5, extended across the process boundary:

* a tick journals its GRANT batches **before** committing them, and an
  ADVANCE record **after** every owned shard committed — so a journal's
  tail after a kill is either complete ticks, or complete ticks plus
  uncommitted GRANTs of the in-flight tick;
* worker start-up **strips** any records after the last ADVANCE (the
  write-ahead of a tick the parent never saw complete), rewrites the
  journal, and replays the rest to rebuild ``busy[]`` exactly;
* a tick the worker already completed (its slot is behind the recovered
  clock) is answered **from the journal** — the replayed GRANT records —
  never re-scheduled, so parent retries after a crash-between-commit-and
  -reply return bit-identical grants.

The parent's retry loop (:meth:`ProcessShardPool.call`) respawns a dead
worker and re-sends the same payload; repeated failures of one call
raise a typed :class:`~repro.errors.WorkerProcessError`.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import TYPE_CHECKING, Any, Sequence

from repro.core.distributed import schedule_output_fiber
from repro.errors import (
    InvalidParameterError,
    MigrationError,
    WorkerProcessError,
)
from repro.net.placement import HashRing
from repro.service.durability import replay_journal
from repro.service.journal import (
    FileJournal,
    MemoryJournal,
    RecordType,
    ShardJournal,
)
from repro.service.resharding import HandoffPayload
from repro.util.validation import check_positive_int

if TYPE_CHECKING:  # pragma: no cover - typing only
    import asyncio

    from repro.core.base import Scheduler
    from repro.core.policies import GrantPolicy
    from repro.graphs.conversion import ConversionScheme

__all__ = ["ProcessShardPool", "worker_main"]

#: Poison modes accepted by the test-only ``poison`` op.
POISON_AFTER_GRANT = "after_grant"
POISON_BEFORE_REPLY = "before_reply"
#: Die after installing an adopted shard, before acknowledging it — the
#: destination-side mid-handoff kill (the parent's retry re-adopts).
POISON_AFTER_ADOPT = "after_adopt"
#: Stall (sleep) before answering the next op — the unresponsive-worker
#: drill: the worker is alive but wedged, so the parent's receive
#: timeout must trip, kill it, and respawn.  ``("stall", seconds)``.
POISON_STALL = "stall"


# -- worker process ----------------------------------------------------------


class _WorkerShard:
    """One owned shard inside a worker process: clock + journal."""

    __slots__ = ("output_fiber", "busy", "journal", "next_tick")

    def __init__(self, output_fiber: int, k: int, journal: ShardJournal) -> None:
        self.output_fiber = output_fiber
        self.journal = journal
        # Strip the write-ahead of an in-flight tick: everything after the
        # last ADVANCE is GRANTs the parent never saw committed, and the
        # parent will re-send that tick.  Keeping them would double-apply.
        records, _torn = journal.reload()
        last_advance = -1
        for i, rec in enumerate(records):
            if rec.type is RecordType.ADVANCE:
                last_advance = i
        kept = records[: last_advance + 1]
        if len(kept) != len(records):
            journal.rewrite_records(kept)
        busy, _queue, tick, _n = replay_journal(kept, None, k)
        self.busy = busy
        self.next_tick = tick

    def availability(self) -> list[bool]:
        return [b == 0 for b in self.busy]

    def advance(self, slot: int) -> None:
        self.journal.advance(slot)
        self.busy = [b - 1 if b > 0 else 0 for b in self.busy]
        self.next_tick = slot + 1

    def replayed_grants(self, slot: int) -> list[tuple[int, int, int, int]]:
        """GRANT tuples this shard journaled for an already-run ``slot``."""
        out: list[tuple[int, int, int, int]] = []
        for rec in self.journal.records():
            if rec.type is RecordType.GRANT and rec.tick == slot:
                v = rec.values
                out.extend(
                    (v[i], v[i + 1], v[i + 2], v[i + 3])
                    for i in range(0, len(v), 4)
                )
        return out


def _journal_path(journal_dir: str, worker_id: int, o: int) -> Path:
    return Path(journal_dir) / f"worker-{worker_id}" / f"shard-{o}.wal"


def _open_journal(journal_dir: str | None, worker_id: int, o: int) -> ShardJournal:
    if journal_dir is None:
        return ShardJournal(MemoryJournal())
    path = _journal_path(journal_dir, worker_id, o)
    path.parent.mkdir(parents=True, exist_ok=True)
    return ShardJournal(FileJournal(path))


def worker_main(
    conn,
    worker_id: int,
    shard_ids: Sequence[int],
    scheme: "ConversionScheme",
    scheduler: "Scheduler",
    policy: "GrantPolicy",
    journal_dir: str | None,
) -> None:
    """Entry point of one shard worker process (module-level: spawn picks
    it up by reference).  Serves ops off ``conn`` until ``stop`` or EOF."""
    shards = {
        o: _WorkerShard(o, scheme.k, _open_journal(journal_dir, worker_id, o))
        for o in shard_ids
    }
    poison: str | None = None
    stall_s = 0.0
    conn.send(("ready", {o: s.next_tick for o, s in shards.items()}))
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        op = msg[0]
        if poison == POISON_STALL and op != "poison":
            # Wedged, not dead: sleep through the parent's receive
            # timeout (it kills and respawns us), then serve normally —
            # one-shot, like the other poisons.
            poison = None
            time.sleep(stall_s)
        if op == "run_tick":
            _slot, work = msg[1], msg[2]
            result: list[tuple[int, list, list]] = []
            granted_any = False
            for o, req_tuples in work:
                shard = shards[o]
                requests = [_request_from_wire(t) for t in req_tuples]
                if _slot < shard.next_tick:
                    # Redelivery of a completed tick: answer from the
                    # journal, never re-schedule (busy[] has moved on).
                    winners = shard.replayed_grants(_slot)
                    won = {(w[0], w[1]) for w in winners}
                    rejected = [
                        (r.input_fiber, r.wavelength)
                        for r in requests
                        if (r.input_fiber, r.wavelength) not in won
                    ]
                    result.append((o, winners, rejected))
                    continue
                # Catch up slots this shard missed while its worker was
                # unreachable (parent ticks kept running): pure journaled
                # clock decay, so availability reflects the start of
                # ``_slot`` exactly as if the worker had been up.
                while shard.next_tick < _slot:
                    shard.advance(shard.next_tick)
                _res, granted, rejected_reqs = schedule_output_fiber(
                    scheme,
                    scheduler,
                    policy,
                    o,
                    requests,
                    shard.availability(),
                    None,
                )
                grant_tuples = [
                    (
                        g.request.input_fiber,
                        g.request.wavelength,
                        g.channel,
                        g.request.duration,
                    )
                    for g in granted
                ]
                if grant_tuples:
                    # Write-ahead: journal before committing.
                    shard.journal.grant_batch(_slot, grant_tuples)
                    granted_any = True
                for _in, _wl, ch, dur in grant_tuples:
                    shard.busy[ch] = dur
                result.append(
                    (
                        o,
                        grant_tuples,
                        [
                            (r.input_fiber, r.wavelength)
                            for r in rejected_reqs
                        ],
                    )
                )
            if poison == POISON_AFTER_GRANT and granted_any:
                os._exit(1)  # died between grant journaling and advance
            for shard in shards.values():
                # The while form also catches up idle shards that missed
                # slots during a partition (journaled ADVANCE per missed
                # slot keeps crash replay exact).
                while shard.next_tick <= _slot:
                    shard.advance(shard.next_tick)
            if poison == POISON_BEFORE_REPLY:
                os._exit(1)  # died after completing, before replying
            conn.send(("tick_done", result))
        elif op == "run_shard":
            # Stateful-policy mode: one shard, policy state threaded
            # through the reply (see ProcessShardedService's stateful
            # tick).  Never answered from the journal — a respawn strips
            # this call's write-ahead GRANTs (they sit after the last
            # ADVANCE), so the retry re-runs the identical computation
            # on the identical pre-draw policy state.
            _slot, o, req_tuples, policy_state = msg[1], msg[2], msg[3], msg[4]
            shard = shards[o]
            if _slot < shard.next_tick:
                conn.send(
                    (
                        "error",
                        f"stateful tick {_slot} redelivered to shard {o} "
                        f"after its clock advanced to {shard.next_tick}",
                    )
                )
                continue
            policy.restore_state(policy_state)
            # Same missed-slot catch-up as run_tick (partition healing).
            while shard.next_tick < _slot:
                shard.advance(shard.next_tick)
            requests = [_request_from_wire(t) for t in req_tuples]
            _res, granted, rejected_reqs = schedule_output_fiber(
                scheme,
                scheduler,
                policy,
                o,
                requests,
                shard.availability(),
                None,
            )
            grant_tuples = [
                (
                    g.request.input_fiber,
                    g.request.wavelength,
                    g.channel,
                    g.request.duration,
                )
                for g in granted
            ]
            if grant_tuples:
                shard.journal.grant_batch(_slot, grant_tuples)
                if poison == POISON_AFTER_GRANT:
                    os._exit(1)  # died between grant journaling and reply
                for _in, _wl, ch, dur in grant_tuples:
                    shard.busy[ch] = dur
            if poison == POISON_BEFORE_REPLY:
                os._exit(1)
            conn.send(
                (
                    "shard_done",
                    (
                        grant_tuples,
                        [(r.input_fiber, r.wavelength) for r in rejected_reqs],
                        policy.export_state(),
                    ),
                )
            )
        elif op == "finish_tick":
            # Stateful-policy mode, end of tick: advance every owned
            # shard.  Self-healing: a respawn between the per-shard calls
            # and here stripped the already-granted shards' write-ahead
            # GRANTs, so the parent sends every shard's grant tuples back
            # and any shard whose journal lost them re-applies before
            # advancing (idempotent — a shard that kept its grants skips).
            _slot, grants_by_shard = msg[1], msg[2]
            for o, shard in shards.items():
                if _slot < shard.next_tick:
                    continue
                # Partition healing: decay the missed slots *before*
                # re-applying this slot's grants (they were computed
                # against availability at the start of ``_slot``).
                while shard.next_tick < _slot:
                    shard.advance(shard.next_tick)
                if not shard.replayed_grants(_slot):
                    tuples = grants_by_shard.get(o) or []
                    if tuples:
                        shard.journal.grant_batch(_slot, tuples)
                        for _in, _wl, ch, dur in tuples:
                            shard.busy[ch] = dur
                shard.advance(_slot)
            conn.send(("ok",))
        elif op == "export_shard":
            o = msg[1]
            shard = shards.get(o)
            if shard is None:
                conn.send(
                    ("error", f"worker {worker_id} does not own shard {o}")
                )
                continue
            payload = HandoffPayload.from_records(
                o,
                scheme.k,
                shard.next_tick,
                shard.busy,
                shard.journal.records(),
                policy.export_output_state(o),
            )
            conn.send(("handoff", payload.encode()))
        elif op == "adopt_shard":
            o, blob = msg[1], msg[2]
            try:
                payload = HandoffPayload.decode(blob)
                if payload.shard != o:
                    raise MigrationError(
                        f"payload is for shard {payload.shard}, not {o}"
                    )
                records = payload.records()
            except MigrationError as exc:
                conn.send(("error", f"adopt_shard {o}: {exc}"))
                continue
            # Idempotent: a retried adopt replaces the previous replica.
            old = shards.pop(o, None)
            if old is not None:
                old.journal.close()
            journal = _open_journal(journal_dir, worker_id, o)
            journal.rewrite_records(records)
            shard = _WorkerShard(o, scheme.k, journal)
            policy.absorb_output_state(o, payload.policy_state)
            shards[o] = shard
            if poison == POISON_AFTER_ADOPT:
                os._exit(1)  # died with the replica installed, unacked
            conn.send(("adopted", (shard.next_tick, list(shard.busy))))
        elif op == "release_shard":
            # Idempotent cleanup: safe on a worker that never owned (or
            # already released) the shard.
            o = msg[1]
            shard = shards.pop(o, None)
            if shard is not None:
                shard.journal.close()
            policy.discard_output_state(o)
            if journal_dir is not None:
                try:
                    _journal_path(journal_dir, worker_id, o).unlink(
                        missing_ok=True
                    )
                except OSError:
                    pass
            conn.send(("ok",))
        elif op == "busy":
            conn.send(("busy", {o: list(s.busy) for o, s in shards.items()}))
        elif op == "poison":
            poison = msg[1]
            if poison == POISON_STALL:
                stall_s = float(msg[2]) if len(msg) > 2 else 60.0
            conn.send(("ok",))
        elif op == "stop":
            for s in shards.values():
                s.journal.close()
            conn.send(("ok",))
            break
        else:
            conn.send(("error", f"unknown op {op!r}"))


def _request_from_wire(t: tuple) -> "Any":
    from repro.core.distributed import SlotRequest

    # Pre-tenant 5-tuples (mixed-version parent/worker during a rolling
    # restart) map to tenant 0.
    return SlotRequest(
        t[0], t[1], t[2], duration=t[3], priority=t[4],
        tenant=t[5] if len(t) > 5 else 0,
    )


def request_wire_tuple(r) -> tuple[int, int, int, int, int, int]:
    """The pipe-side encoding of a SlotRequest (plain ints pickle fast)."""
    return (
        r.input_fiber, r.wavelength, r.output_fiber, r.duration, r.priority,
        r.tenant,
    )


# -- parent-side pool --------------------------------------------------------


class _WorkerUnresponsive(Exception):
    """A live worker process stopped answering within the pool's receive
    timeout (wedged, not dead) — the caller kills and respawns it."""


class _WorkerHandle:
    __slots__ = (
        "worker_id",
        "process",
        "conn",
        "lock",
        "respawns",
        "retired",
        "partitioned",
    )

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.process = None
        self.conn = None
        self.lock = threading.Lock()
        self.respawns = 0
        # A retired worker's id stays allocated (ids are dense list
        # indices) but it has no process and accepts no calls.
        self.retired = False
        # Chaos hook (partition_worker): while True, calls fail fast as
        # WorkerProcessError — the parent-side view of an edge↔worker
        # partition (the process is fine; we just cannot reach it).
        self.partitioned = False


class ProcessShardPool:
    """Spawns, supervises, and talks to the shard worker processes.

    ``call`` is the only RPC surface: it is thread-safe per worker, runs
    on the pool's executor (so asyncio callers use
    :meth:`call_async`), respawns dead workers (journal recovery happens
    in the worker's ``__init__``) and retries the payload — safe because
    ticks are idempotent on redelivery.
    """

    #: Respawn-and-retry attempts per call before giving up.
    MAX_RETRIES = 3

    def __init__(
        self,
        n_fibers: int,
        scheme: "ConversionScheme",
        scheduler: "Scheduler",
        policy: "GrantPolicy",
        *,
        n_workers: int = 2,
        journal_dir: str | os.PathLike | None = None,
        ring_replicas: int = 256,
        unresponsive_timeout: float = 30.0,
        telemetry=None,
    ) -> None:
        self.n_fibers = check_positive_int(n_fibers, "n_fibers")
        check_positive_int(n_workers, "n_workers")
        if unresponsive_timeout <= 0:
            raise InvalidParameterError(
                "unresponsive_timeout must be > 0, got "
                f"{unresponsive_timeout}"
            )
        self.scheme = scheme
        self.scheduler = scheduler
        self.policy = policy
        self.journal_dir = None if journal_dir is None else str(journal_dir)
        self.ring_replicas = ring_replicas
        #: How long ``_recv`` waits for a *live* worker before declaring
        #: it wedged.  A wedged worker is killed and respawned like a
        #: crashed one (ticks are idempotent on redelivery).
        self.unresponsive_timeout = float(unresponsive_timeout)
        self.telemetry = telemetry
        self._c_unresponsive = (
            None if telemetry is None
            else telemetry.counter("procpool.unresponsive")
        )
        self.ring = HashRing(range(n_workers), replicas=ring_replicas)
        #: Live shard → worker map.  Seeded from the bounded-load ring,
        #: then *mutated* by live migration: :meth:`set_owner` flips one
        #: entry atomically between ticks, and worker respawns read this
        #: map (never the ring), so a respawned worker reopens exactly the
        #: shards it currently owns.
        self.placement = self.ring.placement(n_fibers)
        self._ctx = mp.get_context("spawn")
        self._workers = [_WorkerHandle(i) for i in range(n_workers)]
        self._executor_width = n_workers
        self._executor = ThreadPoolExecutor(
            max_workers=n_workers, thread_name_prefix="repro-procpool"
        )
        self._closed = False
        for h in self._workers:
            self._spawn(h)

    @property
    def n_workers(self) -> int:
        """Allocated worker ids (including retired ones — see
        :meth:`active_workers` for the live set)."""
        return len(self._workers)

    def active_workers(self) -> list[int]:
        """Ascending ids of workers that accept calls (not retired)."""
        return [h.worker_id for h in self._workers if not h.retired]

    def shards_of(self, worker_id: int) -> list[int]:
        """Ascending shards currently placed on ``worker_id`` (live map,
        not the ring — migrations move entries)."""
        return sorted(o for o, w in self.placement.items() if w == worker_id)

    def set_owner(self, shard: int, worker_id: int) -> None:
        """Atomically flip one shard's owner (the migration engine's FLIP
        phase; callers must hold the tick boundary)."""
        if not 0 <= shard < self.n_fibers:
            raise InvalidParameterError(
                f"shard must be in [0, {self.n_fibers}), got {shard}"
            )
        h = self._check_worker(worker_id)
        if h.retired:
            raise WorkerProcessError(
                f"worker {worker_id} is retired; cannot own shard {shard}"
            )
        self.placement[shard] = worker_id

    def _check_worker(self, worker_id: int) -> _WorkerHandle:
        if not 0 <= worker_id < len(self._workers):
            raise InvalidParameterError(
                f"no worker {worker_id} (ids 0..{len(self._workers) - 1})"
            )
        return self._workers[worker_id]

    # -- lifecycle ----------------------------------------------------------

    def _spawn(self, h: _WorkerHandle) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        h.process = self._ctx.Process(
            target=worker_main,
            args=(
                child_conn,
                h.worker_id,
                self.shards_of(h.worker_id),
                self.scheme,
                self.scheduler,
                self.policy,
                self.journal_dir,
            ),
            name=f"repro-shard-worker-{h.worker_id}",
            daemon=True,
        )
        h.process.start()
        child_conn.close()
        h.conn = parent_conn
        try:
            # Start-up is not a liveness question: a fresh interpreter +
            # journal replay legitimately takes longer than a tuned-down
            # ``unresponsive_timeout``, so the ready handshake gets its
            # own (generous) budget.
            tag, _payload = self._recv(
                h, timeout=max(30.0, self.unresponsive_timeout)
            )
        except _WorkerUnresponsive as exc:
            raise WorkerProcessError(str(exc)) from exc
        if tag != "ready":
            raise WorkerProcessError(
                f"worker {h.worker_id} failed to start: {tag!r}"
            )

    def _recv(self, h: _WorkerHandle, timeout: float | None = None):
        """Receive one reply, noticing a dead process promptly.

        ``timeout`` defaults to the pool's ``unresponsive_timeout``;
        exceeding it raises :class:`_WorkerUnresponsive` so ``call`` can
        kill and respawn the wedged process.
        """
        if timeout is None:
            timeout = self.unresponsive_timeout
        waited = 0.0
        step = 0.02
        while not h.conn.poll(step):
            waited += step
            if not h.process.is_alive():
                raise EOFError(f"worker {h.worker_id} died")
            if waited >= timeout:
                raise _WorkerUnresponsive(
                    f"worker {h.worker_id} unresponsive for {timeout}s"
                )
        return h.conn.recv()

    def call(self, worker_id: int, op: str, *args) -> Any:
        """Send one op and wait for its reply, respawning on crash."""
        if self._closed:
            raise WorkerProcessError("pool is stopped")
        h = self._check_worker(worker_id)
        if h.retired:
            raise WorkerProcessError(f"worker {worker_id} is retired")
        if h.partitioned:
            raise WorkerProcessError(
                f"worker {worker_id} unreachable (partitioned)"
            )
        with h.lock:
            last: BaseException | None = None
            for _attempt in range(self.MAX_RETRIES):
                try:
                    if h.conn is None or not h.process.is_alive():
                        raise EOFError(f"worker {worker_id} is down")
                    h.conn.send((op, *args))
                    tag, *payload = self._recv(h)
                    if tag == "error":
                        raise WorkerProcessError(
                            f"worker {worker_id}: {payload[0]}"
                        )
                    return payload[0] if payload else None
                except (
                    EOFError, OSError, BrokenPipeError, _WorkerUnresponsive,
                ) as exc:
                    last = exc
                    if isinstance(exc, _WorkerUnresponsive):
                        if self._c_unresponsive is not None:
                            self._c_unresponsive.inc()
                    self._respawn_locked(h)
            raise WorkerProcessError(
                f"worker {worker_id} kept dying "
                f"({self.MAX_RETRIES} respawns)"
            ) from last

    async def call_async(
        self, loop: "asyncio.AbstractEventLoop", worker_id: int, op: str, *args
    ) -> Any:
        return await loop.run_in_executor(
            self._executor, lambda: self.call(worker_id, op, *args)
        )

    def _respawn_locked(self, h: _WorkerHandle) -> None:
        """Replace a dead or wedged worker (caller holds ``h.lock``).

        Kills the old process if it is still alive — an unresponsive
        worker must not linger next to its replacement (it would fight
        over the journal on the next respawn).
        """
        if h.conn is not None:
            h.conn.close()
            h.conn = None
        if h.process is not None:
            if h.process.is_alive():
                h.process.kill()
            h.process.join(timeout=5.0)
        h.respawns += 1
        self._spawn(h)

    # -- elasticity ----------------------------------------------------------

    def add_worker(self) -> int:
        """Spawn a fresh worker with no shards; returns its id.

        The autoscaler's scale-out primitive: the new worker only becomes
        useful once the migration engine moves shards onto it.  Grows the
        call executor so every active worker still gets its own thread
        (safe between ticks — no calls are in flight at the boundary).
        """
        if self._closed:
            raise WorkerProcessError("pool is stopped")
        worker_id = len(self._workers)
        h = _WorkerHandle(worker_id)
        self._workers.append(h)
        n_active = len(self.active_workers())
        if n_active > self._executor_width:
            old = self._executor
            self._executor_width = n_active
            self._executor = ThreadPoolExecutor(
                max_workers=n_active, thread_name_prefix="repro-procpool"
            )
            old.shutdown(wait=True)
        self._spawn(h)
        return worker_id

    def remove_worker(self, worker_id: int) -> None:
        """Retire an empty worker: stop its process, refuse future calls.

        The worker must own no shards (migrate them away first) — the
        pool refuses to orphan placed shards.  Idempotent.  Ids are never
        reused; :meth:`active_workers` shrinks instead.
        """
        h = self._check_worker(worker_id)
        if h.retired:
            return
        owned = self.shards_of(worker_id)
        if owned:
            raise WorkerProcessError(
                f"worker {worker_id} still owns shards {owned}; "
                "migrate them away before removing it"
            )
        if len(self.active_workers()) <= 1:
            raise WorkerProcessError(
                "cannot remove the last active worker"
            )
        with h.lock:
            self._shutdown_worker_locked(h)
            h.retired = True

    # -- chaos / shutdown ----------------------------------------------------

    def kill_worker(self, worker_id: int) -> None:
        """Hard-kill a worker (tests/chaos): SIGKILL, no cleanup."""
        h = self._workers[worker_id]
        if h.process is not None and h.process.is_alive():
            h.process.kill()
            h.process.join(timeout=5.0)

    def partition_worker(self, worker_id: int, active: bool = True) -> None:
        """Simulate an edge↔worker partition (tests/chaos).

        While active, :meth:`call` fails fast with
        :class:`WorkerProcessError` — the process itself keeps running
        with its state intact, exactly like a network split.  Pass
        ``active=False`` to heal.
        """
        self._check_worker(worker_id).partitioned = active

    def _shutdown_worker_locked(self, h: _WorkerHandle) -> None:
        """Cleanly stop one worker process (caller holds ``h.lock``)."""
        try:
            if h.conn is not None and h.process.is_alive():
                h.conn.send(("stop",))
                self._recv(h, timeout=5.0)
        except (
            EOFError, OSError, BrokenPipeError, WorkerProcessError,
            _WorkerUnresponsive,
        ):
            pass
        finally:
            if h.conn is not None:
                h.conn.close()
                h.conn = None
            if h.process is not None:
                h.process.join(timeout=5.0)
                if h.process.is_alive():
                    h.process.kill()
                    h.process.join(timeout=5.0)

    def stop(self) -> None:
        """Stop every worker cleanly; idempotent."""
        if self._closed:
            return
        self._closed = True
        for h in self._workers:
            if h.retired:
                continue
            with h.lock:
                self._shutdown_worker_locked(h)
        self._executor.shutdown(wait=True)
