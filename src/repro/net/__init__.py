"""repro.net — wire protocol and multi-process shard placement.

The paper's decomposition into independent per-output-fiber problems only
pays off when shards stop sharing one GIL.  This package provides the
pieces that take :class:`~repro.service.SchedulingService` out of a single
process:

* :mod:`repro.net.protocol` — typed binary messages (SUBMIT / GRANT /
  REJECT / TICK_ADVANCE / HELLO version handshake) over the shared
  length+CRC32 frame codec (:mod:`repro.util.framing`).
* :mod:`repro.net.server` / :mod:`repro.net.client` — the asyncio TCP
  front door and its client.
* :mod:`repro.net.placement` — consistent-hash shard→worker placement.
* :mod:`repro.net.procpool` / :mod:`repro.net.procservice` — shard
  workers in ``multiprocessing`` processes, each with its own journal
  directory, supervised and restartable; the parent keeps the same
  tick/admission semantics so grants stay bit-identical to
  :class:`~repro.sim.engine.SlottedSimulator`.
* :mod:`repro.net.loadgen` — a process-based load generator that drives
  the TCP front door from separate OS processes.
* :mod:`repro.net.chaos` — a fault-injecting TCP proxy executing seeded
  :class:`~repro.faults.net.NetFaultPlan` wire faults, paired with
  :class:`~repro.net.client.ResilientNetClient`'s reconnect/redelivery
  and heartbeat liveness (protocol v4).

See ``docs/SERVICE.md`` ("Wire protocol" and "Multi-process deployment").
"""

from repro.net.chaos import ChaosProxy
from repro.net.client import NetClient, ResilientNetClient
from repro.net.placement import HashRing
from repro.net.procservice import ProcessShardedService
from repro.net.protocol import (
    PROTOCOL_VERSIONS,
    Bye,
    ErrorMsg,
    Grant,
    Hello,
    Migrate,
    Migrated,
    Ping,
    Pong,
    Reject,
    Submit,
    TickAdvance,
    TickDone,
    Welcome,
    decode_message,
    encode_message,
    negotiate_version,
)
from repro.net.server import NetServer

_LAZY = ("NetLoadReport", "run_load")


def __getattr__(name: str):
    # Imported lazily so ``python -m repro.net.loadgen`` does not trip
    # runpy's found-in-sys.modules warning (once per load process).
    if name in _LAZY:
        from repro.net import loadgen

        return getattr(loadgen, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "PROTOCOL_VERSIONS",
    "Hello",
    "Welcome",
    "ErrorMsg",
    "Bye",
    "Submit",
    "Grant",
    "Reject",
    "TickAdvance",
    "TickDone",
    "Migrate",
    "Migrated",
    "Ping",
    "Pong",
    "encode_message",
    "decode_message",
    "negotiate_version",
    "NetServer",
    "NetClient",
    "ResilientNetClient",
    "ChaosProxy",
    "NetLoadReport",
    "run_load",
    "HashRing",
    "ProcessShardedService",
]
