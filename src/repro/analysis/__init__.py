"""Analysis utilities: Theorem-3 bounds, schedule/matching certificates, and
random instance generation for experiments and tests."""

from repro.analysis.adversarial import tight_single_break_instance
from repro.analysis.analytical import (
    full_range_loss_probability,
    full_range_throughput,
    loss_bounds,
    no_conversion_loss_probability,
)
from repro.analysis.bounds import (
    approximation_gap,
    corollary1_bound,
    theorem3_bound,
)
from repro.analysis.instances import (
    random_circular_instance,
    random_noncircular_instance,
    random_request_vector,
)
from repro.analysis.viz import render_request_graph, render_schedule
from repro.analysis.verify import (
    assert_maximum_schedule,
    matching_from_result,
    optimal_cardinality,
)

__all__ = [
    "theorem3_bound",
    "full_range_loss_probability",
    "no_conversion_loss_probability",
    "full_range_throughput",
    "loss_bounds",
    "corollary1_bound",
    "approximation_gap",
    "optimal_cardinality",
    "matching_from_result",
    "assert_maximum_schedule",
    "random_request_vector",
    "random_circular_instance",
    "random_noncircular_instance",
    "render_request_graph",
    "render_schedule",
    "tight_single_break_instance",
]
