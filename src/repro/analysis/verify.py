"""Optimality certificates for schedules.

A scheduler's output is converted back to an explicit matching in the
request graph and checked two ways: validity (vertex-disjoint conversion
edges) and maximality (no augmenting path, Berge's theorem) — independent
certificates that do not trust any of the algorithms under test.
"""

from __future__ import annotations

from repro.errors import ScheduleError
from repro.graphs.hopcroft_karp import hopcroft_karp
from repro.graphs.matching import Matching
from repro.graphs.request_graph import RequestGraph
from repro.types import ScheduleResult

__all__ = ["matching_from_result", "optimal_cardinality", "assert_maximum_schedule"]


def matching_from_result(rg: RequestGraph, result: ScheduleResult) -> Matching:
    """Lift a wavelength-level schedule to an explicit request-graph matching.

    Grants on wavelength ``w`` are assigned to the lowest-indexed unmatched
    left vertices of that wavelength (same-wavelength requests are
    interchangeable, so any assignment has the same cardinality).
    """
    # First left vertex index of each wavelength.
    first_index: dict[int, int] = {}
    cursor = 0
    for w, count in enumerate(rg.request_vector):
        first_index[w] = cursor
        cursor += count
    used: dict[int, int] = {}  # wavelength -> how many grants consumed
    pairs: list[tuple[int, int]] = []
    for g in sorted(result.grants, key=lambda g: (g.wavelength, g.channel)):
        offset = used.get(g.wavelength, 0)
        if offset >= rg.request_vector[g.wavelength]:
            raise ScheduleError(
                f"more grants than requests on λ{g.wavelength}"
            )
        pairs.append((first_index[g.wavelength] + offset, g.channel))
        used[g.wavelength] = offset + 1
    matching = Matching(pairs)
    matching.validate_against(rg.graph)
    return matching


def optimal_cardinality(rg: RequestGraph) -> int:
    """Maximum matching cardinality of the request graph (Hopcroft–Karp)."""
    return len(hopcroft_karp(rg.graph))


def assert_maximum_schedule(rg: RequestGraph, result: ScheduleResult) -> None:
    """Raise :class:`ScheduleError` unless ``result`` is a *maximum*
    schedule, certified by the absence of an augmenting path."""
    matching = matching_from_result(rg, result)
    path = matching.find_augmenting_path(rg.graph)
    if path is not None:
        raise ScheduleError(
            f"schedule of size {len(matching)} is not maximum: augmenting "
            f"path {path} exists"
        )
