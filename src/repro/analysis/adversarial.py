"""Adversarial instances: the Theorem-3 bound is *tight*.

Corollary 1 bounds the single-break (shortest-edge) deficit by ``(d - 1)/2``
for odd ``d``.  The family below achieves that bound exactly, showing the
paper's analysis cannot be improved.

With ``e = f = a`` (degree ``d = 2a + 1``) and ``k = 2(a + 1)`` channels,
offer ``a + 1`` requests on ``λ0`` and ``a + 1`` on ``λ1``:

* **Optimum** ``2(a + 1)``: the ``λ0`` requests take the minus-side channels
  ``{k-a, …, k-1, 0}`` and the ``λ1`` requests take ``{1, …, a+1}`` — every
  request granted.
* **Shortest-edge break** at ``(a_0, b_0)`` (offset ``t = 0``): every edge
  from the remaining requests to the minus-side channels crosses
  ``a_0 b_0`` and is deleted, so the surviving adjacencies collapse to the
  prefix intervals ``[b_1, b_a]`` (remaining ``λ0`` copies) and
  ``[b_1, b_{a+1}]`` (``λ1`` copies).  Only ``a + 1`` of those ``2a + 1``
  requests fit, for ``a + 2`` total grants — deficit exactly
  ``a = (d - 1)/2``.

The construction is verified empirically (not just asserted) by the test
suite and the APPROX experiment's tightness check.
"""

from __future__ import annotations

from repro.graphs.conversion import CircularConversion
from repro.graphs.request_graph import RequestGraph
from repro.util.validation import check_positive_int

__all__ = ["tight_single_break_instance"]


def tight_single_break_instance(a: int) -> RequestGraph:
    """The worst-case instance for the shortest-edge single break.

    ``a >= 1`` is the symmetric conversion reach; the returned request graph
    has degree ``d = 2a + 1``, optimum ``2(a + 1)``, and a shortest-edge
    single-break matching of exactly ``a + 2`` (deficit ``a``, meeting
    Corollary 1's ``(d - 1)/2``).
    """
    check_positive_int(a, "a")
    k = 2 * (a + 1)
    vector = [0] * k
    vector[0] = a + 1
    vector[1] = a + 1
    return RequestGraph(CircularConversion(k, a, a), vector)
