"""ASCII rendering of request graphs and matchings.

The paper communicates its structures through bipartite-graph figures;
these helpers draw the same structures as text so examples, docstrings and
experiment reports can show *which* edges a schedule picked (Fig. 3/4 style)
without any plotting dependency.
"""

from __future__ import annotations

from repro.graphs.matching import Matching
from repro.graphs.request_graph import RequestGraph
from repro.types import ScheduleResult

__all__ = ["render_request_graph", "render_schedule"]


def render_request_graph(
    rg: RequestGraph, matching: Matching | None = None
) -> str:
    """Draw the request graph as an adjacency table.

    One row per connection request ``a_i``: its wavelength, its adjacency
    set ``B(a_i)`` (occupied channels omitted, as in Section V), and — when
    ``matching`` is given — the channel matched to it (``·`` if unmatched).
    """
    if matching is not None:
        matching.validate_against(rg.graph)
    lines = [
        f"request graph: k={rg.k}, scheme={rg.scheme!r}",
        f"request vector {list(rg.request_vector)}"
        + (
            ""
            if all(rg.available)
            else f", occupied channels {[b for b in range(rg.k) if not rg.available[b]]}"
        ),
    ]
    for a in range(rg.n_requests):
        adjacency = ", ".join(f"b{b}" for b in rg.adjacency_of_request(a))
        row = f"  a{a} (λ{rg.wavelength_of(a)}) -> {{{adjacency}}}"
        if matching is not None:
            b = matching.right_of(a)
            row += f"   matched: {'b' + str(b) if b is not None else '·'}"
        lines.append(row)
    if matching is not None:
        lines.append(f"  |M| = {len(matching)}")
    return "\n".join(lines)


def render_schedule(rg: RequestGraph, result: ScheduleResult) -> str:
    """Draw a schedule as a per-channel table (Fig. 4 style).

    One row per output channel: occupied / granted-from-wavelength / idle.
    """
    assignment = result.channel_assignment
    lines = [f"schedule: {result.n_granted}/{result.n_requested} granted"]
    for b in range(rg.k):
        if not rg.available[b]:
            state = "occupied (ongoing connection)"
        elif b in assignment:
            state = f"<- λ{assignment[b]}"
        else:
            state = "idle"
        lines.append(f"  b{b}: {state}")
    rejected = [
        f"λ{w}×{count}"
        for w, count in enumerate(result.rejected_vector)
        if count
    ]
    if rejected:
        lines.append(f"  dropped: {', '.join(rejected)}")
    return "\n".join(lines)
