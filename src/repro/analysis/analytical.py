"""Analytical loss models for slotted WDM output contention.

The paper's performance references ([11], [13]) analyze blocking
probabilities of limited-conversion interconnects analytically.  Two regimes
admit *exact* closed forms under i.i.d. Bernoulli traffic with uniform
destinations, and they bracket every conversion degree:

* **Full range (d = k)** — only the total request count matters.  The number
  of requests ``X`` reaching one output fiber in a slot is
  ``Binomial(N·k, load/N)`` and ``min(X, k)`` of them are granted, so

  ``loss = E[(X - k)^+] / E[X]``.

* **No conversion (d = 1)** — wavelengths are independent single-server
  systems.  Requests on one wavelength for one output are
  ``X_w ~ Binomial(N, load/N)`` and exactly ``min(X_w, 1)`` is granted:

  ``loss = 1 - P(X_w >= 1) / E[X_w]``.

Every limited degree ``1 < d < k`` falls between the two (more conversion
can only help — a matching feasible at degree ``d`` is feasible at ``d' > d``
since adjacency sets only grow).  The ``ANALYT`` experiment checks the
simulator against both exact ends and the bracketing in the middle, which is
an end-to-end validation of the traffic model, the schedulers and the metric
pipeline at once.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.errors import InvalidParameterError
from repro.util.validation import check_positive_int, check_probability

__all__ = [
    "full_range_loss_probability",
    "no_conversion_loss_probability",
    "full_range_throughput",
    "loss_bounds",
    "erlang_b",
]


def erlang_b(erlangs: float, servers: int) -> float:
    """The Erlang-B blocking probability of an ``M/M/c/c`` loss system.

    ``erlangs`` is the offered traffic ``λ/μ`` and ``servers`` the channel
    count.  Computed with the numerically stable recurrence
    ``B(0) = 1``, ``B(c) = a·B(c-1) / (c + a·B(c-1))``.

    This is the exact blocking probability of one output fiber of the
    *asynchronous* full-range interconnect (Poisson request arrivals,
    exponential holding, k channels) — the regime of the paper's refs
    [11][13][14] — and validates :class:`~repro.sim.asynchronous.
    AsyncWavelengthRouter`.
    """
    check_positive_int(servers, "servers")
    if erlangs < 0:
        raise InvalidParameterError(f"offered erlangs must be >= 0, got {erlangs}")
    if erlangs == 0:
        return 0.0
    b = 1.0
    for c in range(1, servers + 1):
        b = erlangs * b / (c + erlangs * b)
    return b


def _binom_mean_excess(n: int, p: float, cap: int) -> float:
    """``E[(X - cap)^+]`` for ``X ~ Binomial(n, p)``."""
    ks = np.arange(cap + 1, n + 1)
    if ks.size == 0:
        return 0.0
    pmf = stats.binom.pmf(ks, n, p)
    return float(np.sum((ks - cap) * pmf))


def full_range_loss_probability(n_fibers: int, k: int, load: float) -> float:
    """Exact per-request loss probability under full range conversion.

    ``X ~ Binomial(N·k, load/N)`` requests hit one output fiber; the trivial
    scheduler grants ``min(X, k)``.
    """
    check_positive_int(n_fibers, "n_fibers")
    check_positive_int(k, "k")
    check_probability(load, "load")
    if load == 0.0:
        return 0.0
    n = n_fibers * k
    p = load / n_fibers
    mean = n * p  # = k * load
    return _binom_mean_excess(n, p, k) / mean


def no_conversion_loss_probability(n_fibers: int, load: float) -> float:
    """Exact per-request loss probability with no conversion (d = 1).

    Each (wavelength, output) pair is an independent single-channel system
    with ``X_w ~ Binomial(N, load/N)`` contenders and one winner.
    """
    check_positive_int(n_fibers, "n_fibers")
    check_probability(load, "load")
    if load == 0.0:
        return 0.0
    p = load / n_fibers
    mean = n_fibers * p  # = load
    p_served = 1.0 - float(stats.binom.pmf(0, n_fibers, p))
    return 1.0 - p_served / mean


def full_range_throughput(n_fibers: int, k: int, load: float) -> float:
    """Exact normalized carried throughput (grants per channel-slot) under
    full range conversion: ``E[min(X, k)] / k``."""
    check_positive_int(n_fibers, "n_fibers")
    check_positive_int(k, "k")
    check_probability(load, "load")
    n = n_fibers * k
    p = load / n_fibers
    mean = n * p
    return (mean - _binom_mean_excess(n, p, k)) / k


def loss_bounds(n_fibers: int, k: int, load: float) -> tuple[float, float]:
    """``(lower, upper)`` bracket on the loss probability of *any*
    conversion degree ``1 <= d <= k``: full range is the best case, no
    conversion the worst (adjacency sets grow monotonically with ``d``, so a
    degree-``d`` maximum matching is feasible at any ``d' >= d``)."""
    lo = full_range_loss_probability(n_fibers, k, load)
    hi = no_conversion_loss_probability(n_fibers, load)
    if hi < lo - 1e-12:
        raise InvalidParameterError(
            "internal error: bracket inverted — check parameters"
        )
    return lo, hi
