"""Random request-graph instance generators for experiments and tests."""

from __future__ import annotations

import numpy as np

from repro.graphs.conversion import CircularConversion, NonCircularConversion
from repro.graphs.request_graph import RequestGraph
from repro.util.rng import make_rng
from repro.util.validation import (
    check_nonnegative_int,
    check_positive_int,
    check_probability,
)

__all__ = [
    "random_request_vector",
    "random_circular_instance",
    "random_noncircular_instance",
]


def random_request_vector(
    k: int,
    n_fibers: int,
    load: float,
    rng: int | np.random.Generator | None = None,
) -> list[int]:
    """A request vector as one output fiber of an ``N × N`` interconnect
    under uniform traffic would see it.

    Each of the ``N`` input fibers offers a packet on each wavelength with
    probability ``load``, destined to this output with probability ``1/N``
    — i.e. entry ``w`` is Binomial(``n_fibers``, ``load / n_fibers``).
    """
    check_positive_int(k, "k")
    check_positive_int(n_fibers, "n_fibers")
    check_probability(load, "load")
    gen = make_rng(rng)
    return [
        int(x) for x in gen.binomial(n_fibers, load / n_fibers, size=k)
    ]


def _random_available(
    k: int, occupied_fraction: float, gen: np.random.Generator
) -> list[bool] | None:
    if occupied_fraction == 0.0:
        return None
    return [bool(x) for x in gen.random(k) >= occupied_fraction]


def random_circular_instance(
    k: int,
    e: int,
    f: int,
    n_fibers: int = 16,
    load: float = 0.8,
    occupied_fraction: float = 0.0,
    rng: int | np.random.Generator | None = None,
) -> RequestGraph:
    """A random circular-conversion request graph (optionally with occupied
    channels, paper Section V)."""
    check_nonnegative_int(e, "e")
    check_nonnegative_int(f, "f")
    check_probability(occupied_fraction, "occupied_fraction")
    gen = make_rng(rng)
    vec = random_request_vector(k, n_fibers, load, gen)
    return RequestGraph(
        CircularConversion(k, e, f), vec, _random_available(k, occupied_fraction, gen)
    )


def random_noncircular_instance(
    k: int,
    e: int,
    f: int,
    n_fibers: int = 16,
    load: float = 0.8,
    occupied_fraction: float = 0.0,
    rng: int | np.random.Generator | None = None,
) -> RequestGraph:
    """A random non-circular-conversion request graph."""
    check_nonnegative_int(e, "e")
    check_nonnegative_int(f, "f")
    check_probability(occupied_fraction, "occupied_fraction")
    gen = make_rng(rng)
    vec = random_request_vector(k, n_fibers, load, gen)
    return RequestGraph(
        NonCircularConversion(k, e, f),
        vec,
        _random_available(k, occupied_fraction, gen),
    )
