"""Theorem-3 / Corollary-1 approximation bounds (paper Section IV-C)."""

from __future__ import annotations

from repro.core.approx import deficit_bound
from repro.core.base import Scheduler
from repro.core.baseline import HopcroftKarpScheduler
from repro.errors import InvalidParameterError
from repro.graphs.request_graph import RequestGraph

__all__ = ["theorem3_bound", "corollary1_bound", "approximation_gap"]


def theorem3_bound(delta: int, d: int) -> int:
    """Theorem 3: breaking at the ``delta``-th adjacent edge (1-based from
    the minus end) loses at most ``max(delta - 1, d - delta)`` matches."""
    return deficit_bound(delta, d)


def corollary1_bound(d: int) -> int:
    """Corollary 1: the best achievable Theorem-3 bound over all ``delta``.

    Equals ``(d - 1) / 2`` for odd ``d`` (the paper's ``δ = (d+1)/2``) and
    ``d / 2`` for even ``d`` (where ``(d+1)/2`` is not integral and the best
    integral ``δ`` gives ``max(δ-1, d-δ) = d/2``).
    """
    if d < 1:
        raise InvalidParameterError(f"conversion degree must be >= 1, got {d}")
    return min(deficit_bound(delta, d) for delta in range(1, d + 1))


def approximation_gap(
    rg: RequestGraph, approx_scheduler: Scheduler
) -> tuple[int, int, int]:
    """Measured deficit of ``approx_scheduler`` on ``rg``.

    Returns ``(optimal, achieved, gap)`` where ``optimal`` is the maximum
    matching cardinality (via Hopcroft–Karp) and ``gap = optimal -
    achieved >= 0``.
    """
    optimal = HopcroftKarpScheduler().schedule(rg).n_granted
    achieved = approx_scheduler.schedule(rg).n_granted
    return optimal, achieved, optimal - achieved
