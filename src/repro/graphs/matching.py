"""Matchings in bipartite graphs.

A wavelength assignment on one output fiber is exactly a matching in the
request graph (paper Section II-B): edges must be vertex-disjoint because a
request gets at most one channel and a channel serves at most one request.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

from repro.errors import InvalidMatchingError
from repro.graphs.bipartite import BipartiteGraph

__all__ = ["Matching"]


class Matching:
    """An immutable matching: a set of vertex-disjoint ``(left, right)`` edges.

    Construction validates vertex-disjointness; :meth:`validate_against`
    additionally checks every edge exists in a given graph, and
    :meth:`is_maximum_in` produces an optimality certificate by searching for
    an augmenting path.
    """

    __slots__ = ("_pairs", "_left_to_right", "_right_to_left")

    def __init__(self, pairs: Iterable[tuple[int, int]]) -> None:
        left_to_right: dict[int, int] = {}
        right_to_left: dict[int, int] = {}
        for a, b in pairs:
            if a in left_to_right:
                raise InvalidMatchingError(
                    f"left vertex {a} matched twice ({left_to_right[a]} and {b})"
                )
            if b in right_to_left:
                raise InvalidMatchingError(
                    f"right vertex {b} matched twice ({right_to_left[b]} and {a})"
                )
            left_to_right[a] = b
            right_to_left[b] = a
        self._pairs = frozenset(left_to_right.items())
        self._left_to_right = left_to_right
        self._right_to_left = right_to_left

    # -- accessors ----------------------------------------------------------

    @property
    def pairs(self) -> frozenset[tuple[int, int]]:
        """The matched edges as a frozenset of ``(left, right)`` pairs."""
        return self._pairs

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(sorted(self._pairs))

    def __contains__(self, edge: object) -> bool:
        return edge in self._pairs

    def right_of(self, a: int) -> int | None:
        """Right partner of left vertex ``a`` or ``None`` if unmatched."""
        return self._left_to_right.get(a)

    def left_of(self, b: int) -> int | None:
        """Left partner of right vertex ``b`` or ``None`` if unmatched."""
        return self._right_to_left.get(b)

    def matched_left(self) -> frozenset[int]:
        """The saturated left vertices."""
        return frozenset(self._left_to_right)

    def matched_right(self) -> frozenset[int]:
        """The saturated right vertices."""
        return frozenset(self._right_to_left)

    def match_array(self, n_right: int) -> list[int | None]:
        """The paper's ``MATCH[]`` output array.

        ``MATCH[i]`` is the left vertex matched to right vertex ``i`` or
        ``None`` (the paper's ``∅``) when unmatched.
        """
        return [self._right_to_left.get(b) for b in range(n_right)]

    # -- certificates --------------------------------------------------------

    def validate_against(self, graph: BipartiteGraph) -> None:
        """Raise :class:`InvalidMatchingError` unless every matched edge is an
        edge of ``graph`` (vertex-disjointness already held at construction)."""
        for a, b in self._pairs:
            if not (0 <= a < graph.n_left and 0 <= b < graph.n_right):
                raise InvalidMatchingError(
                    f"matched edge ({a}, {b}) has a vertex outside the graph"
                )
            if not graph.has_edge(a, b):
                raise InvalidMatchingError(
                    f"matched edge ({a}, {b}) is not an edge of the graph"
                )

    def find_augmenting_path(self, graph: BipartiteGraph) -> list[int] | None:
        """Find an augmenting path w.r.t. this matching, if one exists.

        Returns an alternating vertex path ``[a0, b0, a1, b1, ..., bm]``
        (left/right alternating, both endpoints unmatched), or ``None``.
        By Berge's theorem the matching is maximum iff ``None`` is returned.
        """
        self.validate_against(graph)
        for start in range(graph.n_left):
            if start in self._left_to_right:
                continue
            # BFS over alternating paths from the free left vertex `start`.
            parent_right: dict[int, int] = {}  # right vertex -> left predecessor
            parent_left: dict[int, int] = {start: -1}  # left vertex -> right predecessor
            queue: deque[int] = deque([start])
            target: int | None = None
            while queue and target is None:
                a = queue.popleft()
                for b in graph.neighbors_of_left(a):
                    if b in parent_right:
                        continue
                    parent_right[b] = a
                    partner = self._right_to_left.get(b)
                    if partner is None:
                        target = b
                        break
                    if partner not in parent_left:
                        parent_left[partner] = b
                        queue.append(partner)
            if target is None:
                continue
            # Reconstruct the alternating path back to `start`.
            path: list[int] = [target]
            b = target
            while True:
                a = parent_right[b]
                path.append(a)
                if a == start:
                    break
                b = parent_left[a]
                path.append(b)
            path.reverse()
            return path
        return None

    def is_maximum_in(self, graph: BipartiteGraph) -> bool:
        """Whether this matching is maximum in ``graph`` (Berge certificate)."""
        return self.find_augmenting_path(graph) is None

    # -- dunder ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Matching):
            return NotImplemented
        return self._pairs == other._pairs

    def __hash__(self) -> int:
        return hash(self._pairs)

    def __repr__(self) -> str:
        return f"Matching({sorted(self._pairs)})"
