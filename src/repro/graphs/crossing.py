"""Crossing edges (paper Definition 1) and the Lemma-1 uncrossing procedure.

Two request-graph edges "cross" when they connect in the pattern that the
breaking procedure of Section IV must eliminate.  With the reference edge
``a_i b_u`` written as ``u = W(i) + t`` (``t ∈ [-e, f]``) and the other edge
``a_j b_v`` as ``W(j) = W(i) + s``, ``v = W(i) + p`` (all mod ``k``),
Definition 1 reads:

* Case 1.1 (``s ∈ [t-f+1, -1]``): crosses iff ``p ∈ [t+1, s+f]``.
* Case 1.2 (``s ∈ [1, t-1+e]``):  crosses iff ``p ∈ [s-e, t-1]``.
* Case 2.1 (``s = 0``, ``j < i``): crosses iff ``p ∈ [t+1, f]``.
* Case 2.2 (``s = 0``, ``j > i``): crosses iff ``p ∈ [-e, t-1]``.

The windows are narrower than ``k`` (they span at most ``d-1 < k`` integers),
so the signed representatives ``s``, ``t``, ``p`` are unique; this module
computes them with :func:`repro.util.intervals.canonical_signed_residue`,
which is exactly the paper's "all numbers inside this interval are mod k"
convention made explicit.

Lemma 1 shows any crossing pair inside a matching can be swapped
(``{a_i b_u, a_j b_v} → {a_i b_v, a_j b_u}``) without losing cardinality;
:func:`uncross_matching` applies this to a fixpoint.  Termination (which the
paper leaves implicit) follows from a potential argument: writing each
matched edge's conversion offset ``p = channel - W(request) (mod k,
canonical)``, a Case-1 swap strictly decreases ``Σ p²`` (the offset change is
``2 s (p - t) < 0`` in both sub-cases), while a Case-2 swap permutes offsets
within one wavelength group and strictly decreases the group's inversion
count.  The lexicographic pair ``(Σ p², inversions)`` therefore strictly
decreases each step.
"""

from __future__ import annotations

from itertools import permutations

from repro.errors import (
    InvalidParameterError,
    UncrossingDidNotConvergeError,
)
from repro.graphs.matching import Matching
from repro.graphs.request_graph import RequestGraph
from repro.util.intervals import canonical_signed_residue

__all__ = ["crosses", "crossing_pairs", "has_crossing_edges", "uncross_matching"]


def _edge_offset(rg: RequestGraph, a: int, b: int) -> int:
    """Canonical conversion offset ``t ∈ [-e, f]`` of edge ``(a, b)``.

    Raises :class:`InvalidParameterError` if ``(a, b)`` is not a conversion
    edge (``b`` outside the adjacency window of ``W(a)``).
    """
    scheme = rg.scheme
    w = rg.wavelength_of(a)
    t = canonical_signed_residue(b - w, scheme.k, -scheme.e, scheme.f)
    if t is None:
        raise InvalidParameterError(
            f"({a}, {b}) is not a conversion edge: channel {b} outside "
            f"[{w - scheme.e}, {w + scheme.f}] mod {scheme.k}"
        )
    return t


def crosses(
    rg: RequestGraph, other: tuple[int, int], reference: tuple[int, int]
) -> bool:
    """Whether edge ``other = a_j b_v`` crosses ``reference = a_i b_u``
    (paper Definition 1).

    Both must be conversion edges of ``rg``'s scheme.  The relation is used
    directionally by the breaking procedure ("all edges that cross the
    breaking edge"); for matched pairs it is symmetric.
    """
    j, v = other
    i, u = reference
    scheme = rg.scheme
    k, e, f = scheme.k, scheme.e, scheme.f
    w_i = rg.wavelength_of(i)
    w_j = rg.wavelength_of(j)
    t = _edge_offset(rg, i, u)
    _edge_offset(rg, j, v)  # validate `other` too
    if (j, v) == (i, u):
        return False

    if w_j != w_i:
        # Case 1.1: W(j) in [u-f+1, W(i)-1] i.e. s in [t-f+1, -1].
        s = canonical_signed_residue(w_j - w_i, k, t - f + 1, -1)
        if s is not None:
            # v in [u+1, W(j)+f] i.e. p in [t+1, s+f].
            return canonical_signed_residue(v - w_i, k, t + 1, s + f) is not None
        # Case 1.2: W(j) in [W(i)+1, u-1+e] i.e. s in [1, t-1+e].
        s = canonical_signed_residue(w_j - w_i, k, 1, t - 1 + e)
        if s is not None:
            # v in [W(j)-e, u-1] i.e. p in [s-e, t-1].
            return canonical_signed_residue(v - w_i, k, s - e, t - 1) is not None
        return False

    # Case 2: same wavelength.
    if j < i:
        # v in [u+1, W(j)+f] i.e. p in [t+1, f].
        return canonical_signed_residue(v - w_i, k, t + 1, f) is not None
    if j > i:
        # v in [W(j)-e, u-1] i.e. p in [-e, t-1].
        return canonical_signed_residue(v - w_i, k, -e, t - 1) is not None
    return False  # same left vertex, different channel: not crossing


def crossing_pairs(
    rg: RequestGraph, matching: Matching
) -> list[tuple[tuple[int, int], tuple[int, int]]]:
    """All ordered pairs ``(other, reference)`` of matched edges where
    ``other`` crosses ``reference``."""
    edges = sorted(matching.pairs)
    return [
        (x, y) for x, y in permutations(edges, 2) if crosses(rg, x, y)
    ]


def has_crossing_edges(rg: RequestGraph, matching: Matching) -> bool:
    """Whether any matched edge crosses another (the paper's
    "no-crossing-edge matching" test, negated)."""
    edges = sorted(matching.pairs)
    return any(
        crosses(rg, x, y) for x, y in permutations(edges, 2)
    )


def uncross_matching(
    rg: RequestGraph, matching: Matching, max_iter: int | None = None
) -> Matching:
    """Apply Lemma 1 until the matching has no crossing edges.

    Each step finds a matched pair where one edge crosses the other and swaps
    their channels.  The result has the same cardinality and no crossing
    edges; every intermediate matching is validated against the request
    graph.

    ``max_iter`` guards against a defect in the crossing predicate (the
    procedure itself provably terminates — see module docstring); the default
    bound is derived from the potential function.
    """
    matching.validate_against(rg.graph)
    m = len(matching)
    if max_iter is None:
        span = max(rg.scheme.e, rg.scheme.f) + 1
        max_iter = (m * span * span + 1) * (m * m + 1) + 8

    current = matching
    for _ in range(max_iter):
        pair = next(
            (
                (x, y)
                for x, y in permutations(sorted(current.pairs), 2)
                if crosses(rg, x, y)
            ),
            None,
        )
        if pair is None:
            return current
        (j, v), (i, u) = pair
        new_pairs = set(current.pairs) - {(j, v), (i, u)} | {(i, v), (j, u)}
        current = Matching(new_pairs)
        current.validate_against(rg.graph)  # Lemma 1: swapped edges exist
    raise UncrossingDidNotConvergeError(
        f"uncrossing did not converge within {max_iter} iterations"
    )
