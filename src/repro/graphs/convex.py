"""Convex bipartite graphs and Glover's algorithm (paper Section III, Table 1).

A bipartite graph is *convex* if there is an ordering of the right side such
that every left vertex's adjacency set ``B(a)`` is an interval
``[BEGIN(a), END(a)]`` of that ordering.  Request graphs under non-circular
symmetrical conversion are convex (paper Section III), as are the reduced
graphs produced by breaking a circular request graph (paper Lemma 2).

Three solvers are provided:

* :func:`glover_maximum_matching` — Table 1 verbatim on an explicit graph:
  each right vertex is matched to the adjacent unmatched left vertex with the
  smallest ``END`` value.
* :func:`first_available_convex` — Table 2 verbatim on an explicit graph:
  each right vertex is matched to the *first* adjacent unmatched left vertex.
  Maximum when ``BEGIN``/``END`` are monotone in left index (Theorem 1).
* :func:`ConvexInstance.solve` — interval-form Glover with a heap,
  ``O((n + k) log n)``, used by fast schedulers and property tests.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Sequence

from repro.errors import InvalidParameterError, NotConvexError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.matching import Matching

__all__ = [
    "is_convex_in_order",
    "glover_maximum_matching",
    "first_available_convex",
    "ConvexInstance",
]


def _resolve_right_order(
    graph: BipartiteGraph, right_order: Sequence[int] | None
) -> list[int]:
    if right_order is None:
        return list(range(graph.n_right))
    order = [int(b) for b in right_order]
    if sorted(set(order)) != sorted(order):
        raise InvalidParameterError("right_order contains duplicates")
    for b in order:
        if not 0 <= b < graph.n_right:
            raise InvalidParameterError(f"right vertex {b} outside graph")
    return order


def _interval_form(
    graph: BipartiteGraph, order: list[int]
) -> list[tuple[int, int]]:
    """Per-left (BEGIN, END) positions in ``order``; (1, 0) marks empty.

    Raises :class:`NotConvexError` if some adjacency set is not an interval
    of ``order`` (including the case of edges to vertices outside ``order``).
    """
    pos = {b: p for p, b in enumerate(order)}
    intervals: list[tuple[int, int]] = []
    for a in range(graph.n_left):
        nbrs = graph.neighbors_of_left(a)
        if not nbrs:
            intervals.append((1, 0))
            continue
        try:
            positions = sorted(pos[b] for b in nbrs)
        except KeyError as exc:
            raise NotConvexError(
                f"left vertex {a} adjacent to right vertex {exc.args[0]} "
                "outside the given ordering"
            ) from None
        lo, hi = positions[0], positions[-1]
        if hi - lo + 1 != len(positions):
            raise NotConvexError(
                f"adjacency of left vertex {a} is not an interval: "
                f"positions {positions}"
            )
        intervals.append((lo, hi))
    return intervals


def is_convex_in_order(
    graph: BipartiteGraph, right_order: Sequence[int] | None = None
) -> bool:
    """Whether every left adjacency set is an interval of ``right_order``.

    ``right_order`` defaults to the natural order ``0..n_right-1``.  When a
    subset order is given, any edge to a right vertex outside it makes the
    answer ``False``.
    """
    order = _resolve_right_order(graph, right_order)
    try:
        _interval_form(graph, order)
    except NotConvexError:
        return False
    return True


def glover_maximum_matching(
    graph: BipartiteGraph, right_order: Sequence[int] | None = None
) -> Matching:
    """Glover's algorithm (paper Table 1), verbatim on an explicit graph.

    For each right vertex in ``right_order``, among adjacent unmatched left
    vertices pick the one whose interval ``END``s earliest (ties broken by
    left index).  Returns a maximum matching when the graph is convex in
    ``right_order`` (checked; raises :class:`NotConvexError` otherwise).
    """
    order = _resolve_right_order(graph, right_order)
    intervals = _interval_form(graph, order)
    matched: set[int] = set()
    pairs: list[tuple[int, int]] = []
    for b in order:
        candidates = [a for a in graph.neighbors_of_right(b) if a not in matched]
        if not candidates:
            continue  # the paper's MATCH[i] := ∅
        j = min(candidates, key=lambda a: (intervals[a][1], a))
        matched.add(j)  # "delete j from A"
        pairs.append((j, b))
    return Matching(pairs)


def first_available_convex(
    graph: BipartiteGraph, right_order: Sequence[int] | None = None
) -> Matching:
    """First Available Algorithm (paper Table 2), verbatim on an explicit
    graph: each right vertex matches the lowest-index adjacent unmatched left
    vertex.

    This is maximum for request graphs of non-circular symmetrical conversion
    (paper Theorem 1) and for reduced graphs in their shifted ordering (paper
    Lemma 2); for an arbitrary convex graph it may be suboptimal.
    """
    order = _resolve_right_order(graph, right_order)
    matched: set[int] = set()
    pairs: list[tuple[int, int]] = []
    for b in order:
        for a in graph.neighbors_of_right(b):  # ascending left index
            if a not in matched:
                matched.add(a)
                pairs.append((a, b))
                break
    return Matching(pairs)


@dataclass(frozen=True)
class ConvexInstance:
    """A convex bipartite instance in interval form.

    ``intervals[a] = (begin, end)`` gives left vertex ``a``'s adjacency as
    positions in ``0..n_right-1``; ``end < begin`` marks an isolated left
    vertex.  This is the representation the fast schedulers and the hardware
    model reason about.
    """

    intervals: tuple[tuple[int, int], ...]
    n_right: int

    def __post_init__(self) -> None:
        if self.n_right < 0:
            raise InvalidParameterError(f"n_right must be >= 0, got {self.n_right}")
        for a, (lo, hi) in enumerate(self.intervals):
            if hi >= lo and not (0 <= lo and hi < self.n_right):
                raise InvalidParameterError(
                    f"interval {a} = [{lo}, {hi}] outside [0, {self.n_right})"
                )

    @property
    def n_left(self) -> int:
        """Number of left vertices."""
        return len(self.intervals)

    def to_graph(self) -> BipartiteGraph:
        """Expand to an explicit :class:`BipartiteGraph`."""
        edges = [
            (a, b)
            for a, (lo, hi) in enumerate(self.intervals)
            for b in range(lo, hi + 1)
        ]
        return BipartiteGraph(self.n_left, self.n_right, edges)

    def solve(self) -> Matching:
        """Maximum matching via heap-based Glover, ``O((n + k) log n)``.

        Left vertices are bucketed by ``BEGIN``; sweeping right positions in
        ascending order, the active vertex with the smallest ``END`` is
        matched (exactly Table 1's min-END rule).
        """
        by_begin: list[list[int]] = [[] for _ in range(self.n_right + 1)]
        for a, (lo, hi) in enumerate(self.intervals):
            if hi >= lo:
                by_begin[lo].append(a)
        heap: list[tuple[int, int]] = []  # (END, left index)
        pairs: list[tuple[int, int]] = []
        for b in range(self.n_right):
            for a in by_begin[b]:
                heapq.heappush(heap, (self.intervals[a][1], a))
            # Drop vertices whose window has already closed.
            while heap and heap[0][0] < b:
                heapq.heappop(heap)
            if heap:
                _, a = heapq.heappop(heap)
                pairs.append((a, b))
        return Matching(pairs)

    def solve_first_available(self) -> Matching:
        """Maximum matching via the First Available rule on interval form.

        Requires ``BEGIN`` and ``END`` to be monotone non-decreasing in left
        index (the property Theorem 1 / Lemma 2 guarantee for request
        graphs); raises :class:`NotConvexError` otherwise, because the rule
        is only proven optimal under that property.

        Runs in ``O(n + k)`` with a single advancing pointer.
        """
        last_lo, last_hi = None, None
        for a, (lo, hi) in enumerate(self.intervals):
            if hi < lo:
                continue
            if last_lo is not None and (lo < last_lo or hi < last_hi):
                raise NotConvexError(
                    f"BEGIN/END not monotone at left vertex {a}: "
                    f"({lo}, {hi}) after ({last_lo}, {last_hi})"
                )
            last_lo, last_hi = lo, hi

        # Under monotone BEGIN/END the first adjacent unmatched left vertex is
        # always the vertex at a single advancing pointer: everything before
        # it is matched, empty, or permanently expired (END < current b), and
        # if the pointer vertex BEGINs after b then so does every later one.
        pairs: list[tuple[int, int]] = []
        ptr = 0
        n = self.n_left
        for b in range(self.n_right):
            while ptr < n:
                lo, hi = self.intervals[ptr]
                if hi < lo or hi < b:  # isolated or expired: skip forever
                    ptr += 1
                    continue
                break
            if ptr < n and self.intervals[ptr][0] <= b:
                pairs.append((ptr, b))
                ptr += 1
        return Matching(pairs)
