"""Wavelength-conversion schemes and conversion graphs (paper Section II-A).

A limited range wavelength converter maps input wavelength ``λ_i`` to a set
of adjacent output wavelengths: ``e`` on the "minus" side and ``f`` on the
"plus" side, for a conversion degree ``d = e + f + 1``.  Two variants are
studied by the paper:

* **Circular symmetrical** — the adjacency set of ``λ_i`` is the circular
  interval ``[i - e, i + f]`` mod ``k`` (paper Fig. 2(a)).
* **Non-circular symmetrical** — the adjacency set is clipped at the band
  edges: ``[max(0, i - e), min(k - 1, i + f)]`` (paper Fig. 2(b)), so
  wavelengths near one end cannot convert to the other end.

Full range conversion (``d = k``) is the special case where every wavelength
converts to every other.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from functools import cached_property

from repro.errors import InvalidParameterError
from repro.graphs.bipartite import BipartiteGraph
from repro.util.intervals import CircularInterval
from repro.util.validation import check_index, check_nonnegative_int, check_positive_int

__all__ = [
    "ConversionScheme",
    "CircularConversion",
    "NonCircularConversion",
    "FullRangeConversion",
]


class ConversionScheme(ABC):
    """A wavelength-conversion capability for a ``k``-wavelength system.

    Subclasses define :meth:`adjacency`, the set of output wavelengths an
    input wavelength may be converted to.  All index arguments are wavelength
    indexes in ``[0, k)``.
    """

    def __init__(self, k: int, e: int, f: int) -> None:
        self._k = check_positive_int(k, "k")
        self._e = check_nonnegative_int(e, "e")
        self._f = check_nonnegative_int(f, "f")
        if self._e + self._f + 1 > self._k:
            raise InvalidParameterError(
                f"conversion degree e+f+1={self._e + self._f + 1} exceeds k={self._k}"
            )

    # -- parameters ----------------------------------------------------------

    @property
    def k(self) -> int:
        """Number of wavelengths per fiber."""
        return self._k

    @property
    def e(self) -> int:
        """Conversion reach on the minus side."""
        return self._e

    @property
    def f(self) -> int:
        """Conversion reach on the plus side."""
        return self._f

    @property
    def degree(self) -> int:
        """Nominal conversion degree ``d = e + f + 1``."""
        return self._e + self._f + 1

    @property
    def is_full_range(self) -> bool:
        """Whether every wavelength can convert to every wavelength."""
        return self.degree == self._k and isinstance(self, CircularConversion)

    # -- degradation ----------------------------------------------------------

    def degraded(self, e: int, f: int) -> "ConversionScheme":
        """This scheme with converter reach capped at ``(e, f)``.

        Models a partially failed limited-range converter (see
        :mod:`repro.faults`): the effective reach is ``(min(self.e, e),
        min(self.f, f))``, down to fixed-wavelength conversion ``d' = 1`` at
        ``e = f = 0``.  Returns ``self`` when the cap does not bind, and
        always a scheme of the same circular/non-circular family (a degraded
        full-range converter becomes a plain circular limited-range one).
        """
        e2 = min(self._e, check_nonnegative_int(e, "e"))
        f2 = min(self._f, check_nonnegative_int(f, "f"))
        if e2 == self._e and f2 == self._f:
            return self
        if isinstance(self, CircularConversion):
            return CircularConversion(self._k, e2, f2)
        return NonCircularConversion(self._k, e2, f2)

    # -- adjacency ------------------------------------------------------------

    @abstractmethod
    def adjacency(self, w: int) -> tuple[int, ...]:
        """Sorted output wavelengths that input wavelength ``w`` converts to
        (the paper's adjacency set of ``λ_w``)."""

    def can_convert(self, w: int, b: int) -> bool:
        """Whether input wavelength ``w`` may be converted to output ``b``."""
        check_index(b, self._k, "b")
        return b in self.adjacency(w)

    def sources(self, b: int) -> tuple[int, ...]:
        """Sorted input wavelengths convertible to output wavelength ``b``."""
        check_index(b, self._k, "b")
        return tuple(w for w in range(self._k) if b in self.adjacency(w))

    @cached_property
    def _adjacency_table(self) -> tuple[tuple[int, ...], ...]:
        return tuple(self.adjacency(w) for w in range(self._k))

    def conversion_graph(self) -> BipartiteGraph:
        """The conversion graph (paper Fig. 2): ``k`` vertices per side, an
        edge wherever conversion is possible."""
        edges = [
            (w, b) for w in range(self._k) for b in self._adjacency_table[w]
        ]
        return BipartiteGraph(self._k, self._k, edges)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(k={self._k}, e={self._e}, f={self._f})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConversionScheme):
            return NotImplemented
        return (
            type(self) is type(other)
            and self._k == other._k
            and self._e == other._e
            and self._f == other._f
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._k, self._e, self._f))


class CircularConversion(ConversionScheme):
    """Circular symmetrical limited range conversion (paper Fig. 2(a)).

    ``λ_w`` converts to ``λ_{(w-e) mod k} ... λ_{(w+f) mod k}``; every
    wavelength has exactly ``d`` targets.

    >>> CircularConversion(k=6, e=1, f=1).adjacency(0)
    (0, 1, 5)
    """

    def adjacency(self, w: int) -> tuple[int, ...]:
        check_index(w, self.k, "w")
        return tuple(
            sorted(CircularInterval(w - self.e, w + self.f, self.k))
        )

    def adjacency_interval(self, w: int) -> CircularInterval:
        """The adjacency set as the paper's interval ``[w - e, w + f]``."""
        check_index(w, self.k, "w")
        return CircularInterval(w - self.e, w + self.f, self.k)


class NonCircularConversion(ConversionScheme):
    """Non-circular symmetrical limited range conversion (paper Fig. 2(b)).

    ``λ_w`` converts to ``[max(0, w-e), min(k-1, w+f)]``; wavelengths within
    ``e`` of the bottom (or ``f`` of the top) of the band have fewer than
    ``d`` targets.

    >>> NonCircularConversion(k=6, e=1, f=1).adjacency(0)
    (0, 1)
    """

    def adjacency(self, w: int) -> tuple[int, ...]:
        check_index(w, self.k, "w")
        lo = max(0, w - self.e)
        hi = min(self.k - 1, w + self.f)
        return tuple(range(lo, hi + 1))

    def adjacency_bounds(self, w: int) -> tuple[int, int]:
        """Clipped ``(BEGIN, END)`` wavelength bounds for ``λ_w``."""
        check_index(w, self.k, "w")
        return max(0, w - self.e), min(self.k - 1, w + self.f)


class FullRangeConversion(CircularConversion):
    """Full range conversion: any wavelength to any wavelength (``d = k``).

    Implemented as the circular scheme with ``e + f + 1 = k``, which the
    paper notes is the special case ``d = k``.
    """

    def __init__(self, k: int) -> None:
        k = check_positive_int(k, "k")
        # Split the reach as evenly as possible; adjacency covers all of
        # [0, k) either way.
        e = (k - 1) // 2
        super().__init__(k, e, k - 1 - e)

    def adjacency(self, w: int) -> tuple[int, ...]:
        check_index(w, self.k, "w")
        return tuple(range(self.k))

    def __repr__(self) -> str:
        return f"FullRangeConversion(k={self.k})"
