"""Hopcroft–Karp maximum bipartite matching, implemented from scratch.

This is the paper's baseline [1] ("An n^{5/2} algorithm for maximum matchings
in bipartite graphs", Hopcroft & Karp 1973), with time complexity
``O(sqrt(n) * (m + n))``.  Applied directly to a request graph with ``Nk``
left vertices it costs ``O(N^{3/2} k^{3/2} d)`` — the figure the paper's
``O(k)``/``O(dk)`` distributed algorithms are compared against.

The implementation is iterative (no recursion-depth limits) and deterministic:
free vertices and adjacency are scanned in ascending index order.
"""

from __future__ import annotations

from collections import deque

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.matching import Matching

__all__ = ["hopcroft_karp"]

_INF = float("inf")


def hopcroft_karp(graph: BipartiteGraph) -> Matching:
    """Compute a maximum matching of ``graph``.

    Returns a :class:`Matching`; its cardinality is the maximum over all
    matchings of ``graph``.
    """
    n_left = graph.n_left
    match_left: list[int] = [-1] * n_left  # left -> right or -1
    match_right: list[int] = [-1] * graph.n_right  # right -> left or -1
    dist: list[float] = [0.0] * n_left

    def bfs() -> bool:
        """Layer free left vertices; True iff an augmenting path exists."""
        queue: deque[int] = deque()
        for a in range(n_left):
            if match_left[a] == -1:
                dist[a] = 0.0
                queue.append(a)
            else:
                dist[a] = _INF
        found = False
        while queue:
            a = queue.popleft()
            for b in graph.neighbors_of_left(a):
                partner = match_right[b]
                if partner == -1:
                    found = True
                elif dist[partner] == _INF:
                    dist[partner] = dist[a] + 1.0
                    queue.append(partner)
        return found

    def dfs(root: int) -> bool:
        """Iterative DFS along the BFS layering, augmenting if possible."""
        # Stack entries: (left vertex, index into its adjacency tuple).
        stack: list[tuple[int, int]] = [(root, 0)]
        path: list[tuple[int, int]] = []  # (left, right) edges along the path
        while stack:
            a, idx = stack[-1]
            nbrs = graph.neighbors_of_left(a)
            if idx >= len(nbrs):
                # Exhausted: mark dead and backtrack.
                dist[a] = _INF
                stack.pop()
                if path:
                    path.pop()
                continue
            stack[-1] = (a, idx + 1)
            b = nbrs[idx]
            partner = match_right[b]
            if partner == -1:
                # Augment along the recorded path plus this final edge.
                path.append((a, b))
                for pa, pb in path:
                    match_left[pa] = pb
                    match_right[pb] = pa
                return True
            if dist[partner] == dist[a] + 1.0:
                path.append((a, b))
                stack.append((partner, 0))
        return False

    while bfs():
        for a in range(n_left):
            if match_left[a] == -1:
                dfs(a)

    return Matching(
        (a, match_left[a]) for a in range(n_left) if match_left[a] != -1
    )
