"""Request graphs (paper Section II-B).

The requests destined to one output fiber in a slot form the *request graph*:
left vertices are connection requests (ordered by their input wavelength
index; same-wavelength requests in arbitrary but fixed order), right vertices
are the output wavelength channels ``b_0 .. b_{k-1}``, and request ``a`` is
adjacent to channel ``b`` iff the request's wavelength can be converted to
``b``.  A *request vector* is the ``1 × k`` row vector whose ``i``-th entry
counts the requests that arrived on ``λ_i``.

The Section-V extension (some output channels occupied by ongoing multi-slot
connections) is modelled by an availability mask: occupied right vertices and
their incident edges are removed.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.conversion import ConversionScheme

__all__ = ["RequestGraph"]


def _normalize_request_vector(request_vector: Sequence[int], k: int) -> tuple[int, ...]:
    vec = list(request_vector)
    if len(vec) != k:
        raise InvalidParameterError(
            f"request vector has length {len(vec)}, expected k={k}"
        )
    out = []
    for w, count in enumerate(vec):
        if isinstance(count, bool) or int(count) != count or int(count) < 0:
            raise InvalidParameterError(
                f"request vector entry {w} must be a nonnegative integer, got {count!r}"
            )
        out.append(int(count))
    return tuple(out)


def _normalize_available(
    available: Sequence[bool] | None, k: int
) -> tuple[bool, ...]:
    if available is None:
        return (True,) * k
    mask = [bool(x) for x in available]
    if len(mask) != k:
        raise InvalidParameterError(
            f"availability mask has length {len(mask)}, expected k={k}"
        )
    return tuple(mask)


class RequestGraph:
    """The bipartite request graph of one output fiber.

    Parameters
    ----------
    scheme:
        Wavelength-conversion scheme of the interconnect.
    request_vector:
        Length-``k`` sequence; entry ``w`` counts requests arrived on ``λ_w``.
    available:
        Optional length-``k`` boolean mask; ``False`` marks output channels
        occupied by ongoing connections (paper Section V).  Defaults to all
        available.
    """

    def __init__(
        self,
        scheme: ConversionScheme,
        request_vector: Sequence[int],
        available: Sequence[bool] | None = None,
    ) -> None:
        self._scheme = scheme
        self._request_vector = _normalize_request_vector(request_vector, scheme.k)
        self._available = _normalize_available(available, scheme.k)

    @classmethod
    def from_wavelengths(
        cls,
        scheme: ConversionScheme,
        wavelengths: Iterable[int],
        available: Sequence[bool] | None = None,
    ) -> "RequestGraph":
        """Build from an iterable of per-request wavelength indexes."""
        vec = [0] * scheme.k
        for w in wavelengths:
            if not 0 <= int(w) < scheme.k:
                raise InvalidParameterError(
                    f"request wavelength {w} outside [0, {scheme.k})"
                )
            vec[int(w)] += 1
        return cls(scheme, vec, available)

    # -- parameters -----------------------------------------------------------

    @property
    def scheme(self) -> ConversionScheme:
        """The conversion scheme."""
        return self._scheme

    @property
    def k(self) -> int:
        """Number of output wavelength channels (right vertices incl. occupied)."""
        return self._scheme.k

    @property
    def request_vector(self) -> tuple[int, ...]:
        """The request vector (counts per input wavelength)."""
        return self._request_vector

    @property
    def available(self) -> tuple[bool, ...]:
        """Availability mask over output channels."""
        return self._available

    @property
    def n_requests(self) -> int:
        """Total number of connection requests (left vertices)."""
        return sum(self._request_vector)

    @property
    def n_available(self) -> int:
        """Number of available output channels."""
        return sum(self._available)

    # -- left-vertex view ------------------------------------------------------

    @cached_property
    def left_wavelengths(self) -> tuple[int, ...]:
        """The paper's ``W(i)``: wavelength of each left vertex ``a_i``.

        Left vertices are ordered by ascending wavelength index, matching the
        paper's request-graph vertex ordering.
        """
        out: list[int] = []
        for w, count in enumerate(self._request_vector):
            out.extend([w] * count)
        return tuple(out)

    def wavelength_of(self, i: int) -> int:
        """``W(i)`` — the wavelength index of left vertex ``a_i``."""
        return self.left_wavelengths[i]

    def adjacency_of_request(self, i: int) -> tuple[int, ...]:
        """Sorted available output channels adjacent to left vertex ``a_i``."""
        w = self.left_wavelengths[i]
        return tuple(b for b in self._scheme.adjacency(w) if self._available[b])

    # -- graph view --------------------------------------------------------------

    @cached_property
    def graph(self) -> BipartiteGraph:
        """The explicit bipartite request graph.

        Right vertices are always ``0..k-1``; occupied channels simply have
        no incident edges (equivalent to the paper's removal of the vertex,
        and keeps channel indexes stable).
        """
        edges: list[tuple[int, int]] = []
        for i, w in enumerate(self.left_wavelengths):
            for b in self._scheme.adjacency(w):
                if self._available[b]:
                    edges.append((i, b))
        return BipartiteGraph(self.n_requests, self.k, edges)

    def request_vector_array(self) -> np.ndarray:
        """The request vector as an ``int64`` NumPy array (copy)."""
        return np.asarray(self._request_vector, dtype=np.int64)

    def available_array(self) -> np.ndarray:
        """The availability mask as a boolean NumPy array (copy)."""
        return np.asarray(self._available, dtype=bool)

    # -- dunder ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RequestGraph):
            return NotImplemented
        return (
            self._scheme == other._scheme
            and self._request_vector == other._request_vector
            and self._available == other._available
        )

    def __hash__(self) -> int:
        return hash((self._scheme, self._request_vector, self._available))

    def __repr__(self) -> str:
        return (
            f"RequestGraph(scheme={self._scheme!r}, "
            f"request_vector={list(self._request_vector)}, "
            f"n_available={self.n_available})"
        )
