"""Explicit bipartite graphs.

The *reference* implementations of every algorithm in this library operate on
:class:`BipartiteGraph`; the *fast* request-vector implementations in
:mod:`repro.core` are cross-validated against them.  Left vertices are the
integers ``0..n_left-1`` and right vertices ``0..n_right-1``; an edge is the
pair ``(a, b)``.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import InvalidGraphError
from repro.util.validation import check_nonnegative_int

__all__ = ["BipartiteGraph"]


class BipartiteGraph:
    """A bipartite graph with integer-indexed sides.

    Adjacency is stored per side as sorted tuples so iteration order is
    deterministic (left neighbours of a right vertex ascend, matching the
    paper's "first vertex in A adjacent to b" selection).

    Parameters
    ----------
    n_left, n_right:
        Number of vertices on each side.
    edges:
        Iterable of ``(a, b)`` pairs with ``0 <= a < n_left`` and
        ``0 <= b < n_right``.  Duplicate edges are rejected.
    """

    __slots__ = ("_n_left", "_n_right", "_adj_left", "_adj_right", "_edges")

    def __init__(
        self, n_left: int, n_right: int, edges: Iterable[tuple[int, int]] = ()
    ) -> None:
        self._n_left = check_nonnegative_int(n_left, "n_left")
        self._n_right = check_nonnegative_int(n_right, "n_right")
        adj_left: list[list[int]] = [[] for _ in range(self._n_left)]
        adj_right: list[list[int]] = [[] for _ in range(self._n_right)]
        edge_set: set[tuple[int, int]] = set()
        for a, b in edges:
            if not 0 <= a < self._n_left:
                raise InvalidGraphError(
                    f"left endpoint {a} outside [0, {self._n_left})"
                )
            if not 0 <= b < self._n_right:
                raise InvalidGraphError(
                    f"right endpoint {b} outside [0, {self._n_right})"
                )
            if (a, b) in edge_set:
                raise InvalidGraphError(f"duplicate edge ({a}, {b})")
            edge_set.add((a, b))
            adj_left[a].append(b)
            adj_right[b].append(a)
        self._adj_left = tuple(tuple(sorted(nbrs)) for nbrs in adj_left)
        self._adj_right = tuple(tuple(sorted(nbrs)) for nbrs in adj_right)
        self._edges = frozenset(edge_set)

    # -- basic accessors ---------------------------------------------------

    @property
    def n_left(self) -> int:
        """Number of left-side vertices (connection requests)."""
        return self._n_left

    @property
    def n_right(self) -> int:
        """Number of right-side vertices (output wavelength channels)."""
        return self._n_right

    @property
    def n_edges(self) -> int:
        """Number of edges."""
        return len(self._edges)

    def edges(self) -> frozenset[tuple[int, int]]:
        """The edge set as a frozenset of ``(left, right)`` pairs."""
        return self._edges

    def iter_edges_sorted(self) -> Iterator[tuple[int, int]]:
        """Edges in lexicographic ``(left, right)`` order."""
        return iter(sorted(self._edges))

    def has_edge(self, a: int, b: int) -> bool:
        """Whether edge ``(a, b)`` exists."""
        return (a, b) in self._edges

    def neighbors_of_left(self, a: int) -> tuple[int, ...]:
        """Sorted right neighbours of left vertex ``a`` (the paper's B(a))."""
        return self._adj_left[a]

    def neighbors_of_right(self, b: int) -> tuple[int, ...]:
        """Sorted left neighbours of right vertex ``b``."""
        return self._adj_right[b]

    def degree_left(self, a: int) -> int:
        """Degree of left vertex ``a``."""
        return len(self._adj_left[a])

    def degree_right(self, b: int) -> int:
        """Degree of right vertex ``b``."""
        return len(self._adj_right[b])

    # -- derived graphs ----------------------------------------------------

    def induced_subgraph(
        self, keep_left: Iterable[int], keep_right: Iterable[int]
    ) -> tuple["BipartiteGraph", list[int], list[int]]:
        """Subgraph induced by the given vertex subsets.

        Vertices are renumbered consecutively in ascending original order.
        Returns ``(subgraph, left_map, right_map)`` where ``left_map[i]`` is
        the original index of new left vertex ``i`` (likewise for right).
        """
        left_map = sorted(set(keep_left))
        right_map = sorted(set(keep_right))
        for a in left_map:
            if not 0 <= a < self._n_left:
                raise InvalidGraphError(f"left vertex {a} outside graph")
        for b in right_map:
            if not 0 <= b < self._n_right:
                raise InvalidGraphError(f"right vertex {b} outside graph")
        left_inv = {orig: new for new, orig in enumerate(left_map)}
        right_inv = {orig: new for new, orig in enumerate(right_map)}
        sub_edges = [
            (left_inv[a], right_inv[b])
            for (a, b) in self._edges
            if a in left_inv and b in right_inv
        ]
        return (
            BipartiteGraph(len(left_map), len(right_map), sub_edges),
            left_map,
            right_map,
        )

    def without_edges(self, remove: Iterable[tuple[int, int]]) -> "BipartiteGraph":
        """Copy of this graph with the given edges removed.

        Raises :class:`InvalidGraphError` if an edge to remove is absent.
        """
        remove_set = set(remove)
        missing = remove_set - self._edges
        if missing:
            raise InvalidGraphError(f"edges not in graph: {sorted(missing)}")
        return BipartiteGraph(
            self._n_left, self._n_right, self._edges - remove_set
        )

    def reorder(
        self, left_order: list[int], right_order: list[int]
    ) -> "BipartiteGraph":
        """Relabel vertices: new vertex ``i`` is old ``left_order[i]`` etc.

        Both orders must be permutations of their side's vertex range.  Used
        by the breaking procedure's left-shift reordering (paper Fig. 5(b)).
        """
        if sorted(left_order) != list(range(self._n_left)):
            raise InvalidGraphError("left_order is not a permutation")
        if sorted(right_order) != list(range(self._n_right)):
            raise InvalidGraphError("right_order is not a permutation")
        left_inv = {orig: new for new, orig in enumerate(left_order)}
        right_inv = {orig: new for new, orig in enumerate(right_order)}
        return BipartiteGraph(
            self._n_left,
            self._n_right,
            [(left_inv[a], right_inv[b]) for (a, b) in self._edges],
        )

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BipartiteGraph):
            return NotImplemented
        return (
            self._n_left == other._n_left
            and self._n_right == other._n_right
            and self._edges == other._edges
        )

    def __hash__(self) -> int:
        return hash((self._n_left, self._n_right, self._edges))

    def __repr__(self) -> str:
        return (
            f"BipartiteGraph(n_left={self._n_left}, n_right={self._n_right}, "
            f"n_edges={len(self._edges)})"
        )
