"""Graph substrate: bipartite graphs, matchings, conversion graphs, request
graphs, convex-bipartite machinery (Glover's algorithm), crossing edges and
graph breaking, and a from-scratch Hopcroft--Karp baseline."""

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.breaking import BrokenGraph, break_graph
from repro.graphs.conversion import (
    CircularConversion,
    ConversionScheme,
    FullRangeConversion,
    NonCircularConversion,
)
from repro.graphs.convex import (
    ConvexInstance,
    first_available_convex,
    glover_maximum_matching,
    is_convex_in_order,
)
from repro.graphs.crossing import (
    crosses,
    crossing_pairs,
    has_crossing_edges,
    uncross_matching,
)
from repro.graphs.hopcroft_karp import hopcroft_karp
from repro.graphs.matching import Matching
from repro.graphs.request_graph import RequestGraph

__all__ = [
    "BipartiteGraph",
    "Matching",
    "hopcroft_karp",
    "ConversionScheme",
    "CircularConversion",
    "NonCircularConversion",
    "FullRangeConversion",
    "RequestGraph",
    "ConvexInstance",
    "is_convex_in_order",
    "glover_maximum_matching",
    "first_available_convex",
    "crosses",
    "crossing_pairs",
    "has_crossing_edges",
    "uncross_matching",
    "break_graph",
    "BrokenGraph",
]
