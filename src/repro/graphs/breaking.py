"""Breaking a request graph at an edge (paper Definition 2, Lemma 2, Fig. 5).

Breaking request graph ``G`` at edge ``a_i b_u`` removes ``a_i``, ``b_u``,
their incident edges, and every edge that crosses ``a_i b_u``; the remaining
vertices are then left-shifted so ``a_{i+1}`` and ``b_{u+1}`` come first.  In
that ordering the reduced graph is convex with ``BEGIN``/``END`` monotone in
left index (Lemma 2), so the First Available Algorithm applies.

This module is the *reference* implementation operating on explicit graphs;
the ``O(dk)`` request-vector version lives in
:mod:`repro.core.break_first_available` and is cross-validated against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.errors import InvalidParameterError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.convex import first_available_convex, is_convex_in_order
from repro.graphs.crossing import crosses
from repro.graphs.matching import Matching
from repro.graphs.request_graph import RequestGraph

__all__ = ["BrokenGraph", "break_graph"]


@dataclass(frozen=True)
class BrokenGraph:
    """The reduced graph ``G'`` from breaking ``G`` at ``a_i b_u``.

    Attributes
    ----------
    request_graph:
        The original request graph ``G``.
    breaking_edge:
        The pair ``(i, u)`` in original indices.
    left_order, right_order:
        Original indices of the reduced graph's vertices in the Lemma-2
        shifted order (``a_{i+1} ..`` then wrap; likewise channels).
    reduced:
        The reduced graph with vertices renumbered to shifted positions.
    """

    request_graph: RequestGraph
    breaking_edge: tuple[int, int]
    left_order: tuple[int, ...]
    right_order: tuple[int, ...]
    reduced: BipartiteGraph

    @cached_property
    def available_positions(self) -> tuple[int, ...]:
        """Shifted positions of *available* channels, ascending.

        Occupied channels (paper Section V) are removed as vertices in the
        paper's construction; here they stay as isolated vertices, so
        convexity and First Available are evaluated over this order.
        """
        available = self.request_graph.available
        return tuple(
            pos
            for pos, orig in enumerate(self.right_order)
            if available[orig]
        )

    @cached_property
    def is_convex(self) -> bool:
        """Lemma-2 check: the reduced graph is convex in the shifted order
        of available channels."""
        return is_convex_in_order(self.reduced, self.available_positions)

    def intervals(self) -> list[tuple[int, int]]:
        """Per-left ``(BEGIN, END)`` shifted positions; ``(1, 0)`` if isolated."""
        out: list[tuple[int, int]] = []
        for a in range(self.reduced.n_left):
            nbrs = self.reduced.neighbors_of_left(a)
            out.append((nbrs[0], nbrs[-1]) if nbrs else (1, 0))
        return out

    def solve(self) -> Matching:
        """Maximum matching of the *original* graph through this break:
        First Available on the reduced graph plus the breaking edge.

        Optimal for the original graph whenever the breaking edge lies in
        some no-crossing-edge maximum matching (Lemma 3); the Break-and-
        First-Available scheduler guarantees this by trying all ``d`` breaks
        of one pivot vertex (Lemma 4).
        """
        sub_matching = first_available_convex(
            self.reduced, self.available_positions
        )
        pairs = [
            (self.left_order[a], self.right_order[b]) for a, b in sub_matching
        ]
        pairs.append(self.breaking_edge)
        return Matching(pairs)


def break_graph(rg: RequestGraph, i: int, u: int) -> BrokenGraph:
    """Break ``rg`` at edge ``a_i b_u`` (paper Definition 2).

    ``(i, u)`` must be an edge of the request graph (conversion-adjacent and
    ``b_u`` available).  Returns the reduced graph in the Lemma-2 shifted
    ordering.
    """
    graph = rg.graph
    if not 0 <= i < graph.n_left:
        raise InvalidParameterError(f"left vertex {i} outside request graph")
    if not 0 <= u < graph.n_right:
        raise InvalidParameterError(f"channel {u} outside request graph")
    if not graph.has_edge(i, u):
        raise InvalidParameterError(
            f"({i}, {u}) is not an edge of the request graph "
            "(not conversion-adjacent, or channel occupied)"
        )

    n_left, k = graph.n_left, graph.n_right
    removed = {
        (j, v)
        for (j, v) in graph.edges()
        if j == i or v == u or crosses(rg, (j, v), (i, u))
    }
    kept = graph.edges() - removed

    left_order = tuple(range(i + 1, n_left)) + tuple(range(i))
    right_order = tuple(range(u + 1, k)) + tuple(range(u))
    left_pos = {orig: new for new, orig in enumerate(left_order)}
    right_pos = {orig: new for new, orig in enumerate(right_order)}
    reduced = BipartiteGraph(
        n_left - 1,
        k - 1,
        [(left_pos[a], right_pos[b]) for (a, b) in kept],
    )
    return BrokenGraph(
        request_graph=rg,
        breaking_edge=(i, u),
        left_order=left_order,
        right_order=right_order,
        reduced=reduced,
    )
