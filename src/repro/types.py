"""Shared value types used across the library's public API."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["Grant", "ScheduleResult"]


@dataclass(frozen=True, slots=True)
class Grant:
    """One granted connection request on an output fiber.

    Attributes
    ----------
    wavelength:
        Input wavelength index of the granted request.
    channel:
        Output wavelength channel assigned to it.
    """

    wavelength: int
    channel: int


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling one output fiber for one time slot.

    Attributes
    ----------
    grants:
        The granted ``(wavelength → channel)`` assignments, one per granted
        request, channel-disjoint and conversion-feasible.
    request_vector:
        The request vector that was scheduled.
    available:
        The availability mask that was in force.
    rejected_vector:
        Per-wavelength counts of rejected requests
        (``request_vector[w] - granted_vector[w]``).
    stats:
        Optional scheduler-specific counters (e.g. reduced graphs tried).
    """

    grants: tuple[Grant, ...]
    request_vector: tuple[int, ...]
    available: tuple[bool, ...]
    stats: Mapping[str, int] = field(default_factory=dict)

    @property
    def n_granted(self) -> int:
        """Number of granted requests (the matching cardinality)."""
        return len(self.grants)

    @property
    def n_requested(self) -> int:
        """Total number of requests offered."""
        return sum(self.request_vector)

    @property
    def n_rejected(self) -> int:
        """Number of rejected requests (output contention losses)."""
        return self.n_requested - self.n_granted

    @property
    def granted_vector(self) -> tuple[int, ...]:
        """Per-wavelength counts of granted requests."""
        counts = [0] * len(self.request_vector)
        for g in self.grants:
            counts[g.wavelength] += 1
        return tuple(counts)

    @property
    def rejected_vector(self) -> tuple[int, ...]:
        """Per-wavelength counts of rejected requests."""
        granted = self.granted_vector
        return tuple(
            r - g for r, g in zip(self.request_vector, granted)
        )

    @property
    def channel_assignment(self) -> dict[int, int]:
        """Mapping ``channel → wavelength`` over granted channels."""
        return {g.channel: g.wavelength for g in self.grants}
