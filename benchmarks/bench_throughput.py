"""Benchmark PERF-D: the loss-vs-load / conversion-degree study, plus raw
simulator slot-rate."""

from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.experiments.registry import run_experiment
from repro.graphs.conversion import CircularConversion
from repro.sim.engine import SlottedSimulator
from repro.sim.traffic import BernoulliTraffic


def test_perf_d_experiment(benchmark):
    res = benchmark.pedantic(
        run_experiment,
        args=("PERF-D",),
        kwargs={"n_fibers": 4, "k": 8, "slots": 120},
        rounds=1,
        iterations=1,
    )
    assert res.passed, res.render()


def test_simulator_slot_rate(benchmark):
    """Raw engine speed: one 100-slot run of an 8×8, k=16, d=3 switch."""
    def run():
        sim = SlottedSimulator(
            8,
            CircularConversion(16, 1, 1),
            BreakFirstAvailableScheduler(),
            BernoulliTraffic(8, 16, 0.9),
            seed=1,
        )
        return sim.run(100)

    res = benchmark(run)
    m = res.metrics
    assert m.granted + m.rejected == m.submitted
    assert m.n_slots == 100
