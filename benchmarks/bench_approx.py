"""Benchmark APPROX: the single-break approximation — bound sweep and the
speed side of the Section-IV-C trade-off."""

from repro.analysis.bounds import corollary1_bound
from repro.core.approx import SingleBreakScheduler
from repro.core.baseline import HopcroftKarpScheduler
from repro.experiments.registry import run_experiment


def test_approx_gap_experiment(benchmark):
    res = benchmark.pedantic(
        run_experiment, args=("APPROX",), kwargs={"trials": 40}, rounds=1, iterations=1
    )
    assert res.passed, res.render()


def test_single_break_shortest_k64(benchmark, circular_64):
    scheduler = SingleBreakScheduler("shortest")
    res = benchmark(scheduler.schedule, circular_64)
    opt = HopcroftKarpScheduler().schedule(circular_64).n_granted
    assert opt - res.n_granted <= corollary1_bound(circular_64.scheme.degree)


def test_single_break_minus_end_k64(benchmark, circular_64):
    scheduler = SingleBreakScheduler("minus-end")
    res = benchmark(scheduler.schedule, circular_64)
    opt = HopcroftKarpScheduler().schedule(circular_64).n_granted
    assert opt - res.n_granted <= res.stats["deficit_bound"]
