"""Deterministic perf-regression harness (``BENCH_PR9.json``).

Runs a small, fixed-seed benchmark suite over the layers this repo's
performance story rests on and writes one JSON document per run:

* ``kernel`` group — the batch kernels (on the process-wide backend
  selected by :mod:`repro.core.kernels`, recorded in
  ``meta.kernel_backend``) and the memoized schedulers.  These are pure
  CPU micro-benchmarks, stable enough to gate in CI: a run whose
  ``ops_per_s`` drops more than ``--threshold`` (default 30%) below the
  committed baseline fails the comparison — but only when current and
  baseline ran the *same* kernel backend; ops/s across backends are not
  comparable, so a mismatch skips the kernel gate with a printed notice.
  The ``*_python`` variants pin the pure-Python reference backend, giving
  every run a machine-local yardstick: ``derived.compiled_fa_speedup`` /
  ``compiled_bfa_speedup`` are the active backend's ratio over it, and
  ``--min-compiled-speedup`` (default 10×) gates the BFA ratio whenever
  the active backend is the Numba-compiled one.
* ``sim`` group — end-to-end slot throughput of the fast engine vs the full
  engine on the same seeded multi-slot traffic.  Not gated on absolute
  speed (CI machines vary) but on the *ratio*: the fast engine must stay at
  least ``--min-speedup`` (default 5×) ahead of the full engine.
* ``service`` group — per-tick latency of the scheduling service with
  durability off vs the in-memory write-ahead journal vs the file
  backend.  Gated on the *ratio*: the in-memory journal must cost less
  than ``--max-journal-overhead`` (default 10%) over durability off.
* ``qos`` group — per-tick latency of a multi-tenant service (weighted
  fair grants, SHED admission, per-tenant accounting) vs an otherwise
  identical single-tenant service, paired tick-by-tick like the service
  group.  Gated on the derived ``qos_overhead`` median ratio
  (``--max-qos-overhead``, default 10%).
* ``net`` group — ticks/s and request p50/p99 over TCP under external
  multi-process load (``repro.net.loadgen``), single-process backend vs
  multi-process shard placement.  The ≥2-worker backend must beat the
  single-process ticks/s by ``--min-net-speedup`` — but only when the
  machine has more than one CPU (``meta.cpus`` records the truth);
  scheduling across processes cannot pay for its pickling on one core.
* ``reshard`` group — the live-migration pause vs the baseline tick on
  the same two-worker service.  Gated on the derived
  ``reshard_stall_ticks`` ratio (``--max-reshard-stall``, default 20):
  one move must never displace more than that many slots of work.

Usage::

    python benchmarks/harness.py --quick --out BENCH_PR9.json
    python benchmarks/harness.py --quick --compare BENCH_PR9.json
    python benchmarks/harness.py --quick --profile kernels

The JSON layout::

    {"meta": {...}, "benchmarks": {name: {group, calls, ops_per_s,
     p50_s, p99_s}}, "derived": {"multislot_speedup": ...}}
"""

from __future__ import annotations

import argparse
import asyncio
import cProfile
import json
import os
import platform
import pstats
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.core import kernels as kernel_registry
from repro.core.batch import batch_first_available
from repro.core.batch_bfa import batch_break_first_available
from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.core.distributed import SlotRequest
from repro.core.memo import ScheduleCache
from repro.core.policies import WeightedFairPolicy
from repro.faults import FaultPlan
from repro.graphs.conversion import CircularConversion
from repro.graphs.request_graph import RequestGraph
from repro.service import DurabilityConfig, SchedulingService
from repro.service.queue import OverflowPolicy, TenantAdmission
from repro.sim.duration import GeometricDuration
from repro.sim.engine import SlottedSimulator
from repro.sim.fast import FastPacketSimulator
from repro.sim.traffic import BernoulliTraffic
from repro.util.rng import make_rng

KERNEL = "kernel"
SIM = "sim"
SERVICE = "service"
QOS = "qos"
NET = "net"
RESHARD = "reshard"
REGRESSION_THRESHOLD = 0.30
MIN_MULTISLOT_SPEEDUP = 5.0
MAX_JOURNAL_OVERHEAD = 0.10
MAX_QOS_OVERHEAD = 0.10
MIN_NET_SPEEDUP = 1.0
MIN_COMPILED_SPEEDUP = 10.0
MAX_RESHARD_STALL_TICKS = 20.0


def _time_calls(fn, calls: int) -> dict[str, float]:
    """Run ``fn`` ``calls`` times; summarize per-call wall times."""
    samples = np.empty(calls, dtype=float)
    for i in range(calls):
        t0 = time.perf_counter()
        fn()
        samples[i] = time.perf_counter() - t0
    return {
        "calls": calls,
        "ops_per_s": calls / float(samples.sum()),
        "p50_s": float(np.percentile(samples, 50)),
        "p99_s": float(np.percentile(samples, 99)),
    }


def _kernel_inputs(rows: int, k: int, seed: int):
    rng = np.random.default_rng(seed)
    req = rng.poisson(1.0, size=(rows, k)).astype(np.int64)
    avail = rng.random((rows, k)) < 0.8
    return req, avail


def bench_kernels(quick: bool) -> dict[str, dict]:
    rows, k = (64, 16)
    calls = 60 if quick else 400
    req, avail = _kernel_inputs(rows, k, seed=42)

    def fa():
        batch_first_available(req, avail, 1, 1, check=False)

    def bfa():
        batch_break_first_available(req, avail, 1, 1, check=False)

    # Warm the active backend outside the timed region: on the Numba
    # backend the first call per signature pays JIT compilation (amortized
    # across runs by its on-disk cache, but never part of steady state).
    fa()
    bfa()
    out = {}
    out["batch_fa_kernel"] = {"group": KERNEL, **_time_calls(fa, calls)}
    out["batch_bfa_kernel"] = {"group": KERNEL, **_time_calls(bfa, calls)}
    # The pure-Python reference backend on the same inputs: the in-run
    # yardstick the compiled-speedup gate divides against.
    with kernel_registry.use_backend("python"):
        out["batch_fa_kernel_python"] = {
            "group": KERNEL,
            **_time_calls(fa, calls),
        }
        out["batch_bfa_kernel_python"] = {
            "group": KERNEL,
            **_time_calls(bfa, calls),
        }
    return out


def bench_scheduler_cache(quick: bool) -> dict[str, dict]:
    """Memoized vs memo-free scheduler over a recurring working set."""
    scheme = CircularConversion(16, 1, 1)
    rng = np.random.default_rng(7)
    graphs = []
    for _ in range(32):
        wavelengths = rng.integers(scheme.k, size=int(rng.integers(0, 20)))
        graphs.append(
            RequestGraph.from_wavelengths(
                scheme, (int(w) for w in wavelengths), None
            )
        )
    calls = 30 if quick else 200

    def sweep(scheduler):
        def run():
            for rg in graphs:
                scheduler.schedule(rg)

        return run

    out = {}
    out["scheduler_uncached"] = {
        "group": KERNEL,
        **_time_calls(sweep(BreakFirstAvailableScheduler(cache=None)), calls),
    }
    cached = BreakFirstAvailableScheduler(cache=ScheduleCache(maxsize=4096))
    sweep(cached)()  # warm the cache so the timed region measures hits
    out["scheduler_cached"] = {
        "group": KERNEL,
        **_time_calls(sweep(cached), calls),
    }
    return out


def bench_sims(quick: bool) -> dict[str, dict]:
    n_fibers, k = 16, 16
    scheme = CircularConversion(k, 1, 1)
    slots = 100 if quick else 400
    calls_fast = 10 if quick else 30
    calls_full = 3 if quick else 5

    def traffic():
        return BernoulliTraffic(
            n_fibers, k, 0.9, durations=GeometricDuration(3.0)
        )

    def run_fast():
        FastPacketSimulator(n_fibers, scheme, traffic(), seed=13).run(slots)

    def run_full():
        SlottedSimulator(
            n_fibers,
            scheme,
            BreakFirstAvailableScheduler(),
            traffic(),
            seed=13,
        ).run(slots)

    def run_fast_single():
        FastPacketSimulator(
            n_fibers, scheme, BernoulliTraffic(n_fibers, k, 0.9), seed=13
        ).run(slots)

    return {
        "fast_sim_multislot": {
            "group": SIM,
            "slots": slots,
            **_time_calls(run_fast, calls_fast),
        },
        "full_sim_multislot": {
            "group": SIM,
            "slots": slots,
            **_time_calls(run_full, calls_full),
        },
        "fast_sim_singleslot": {
            "group": SIM,
            "slots": slots,
            **_time_calls(run_fast_single, calls_fast),
        },
    }


def bench_faults(quick: bool) -> dict[str, dict]:
    """Degraded-mode overhead: the same seeded run with an active fault
    plan (outages + a converter degradation) vs the fault-free path.

    Not gated on absolute speed; the point is that the per-slot fault
    queries and the narrowed-scheme scheduling stay in the same order of
    magnitude as the nominal run (the JSON diff makes drift visible).
    """
    n_fibers, k = 16, 16
    scheme = CircularConversion(k, 1, 1)
    slots = 100 if quick else 400
    calls_full = 3 if quick else 5
    calls_fast = 10 if quick else 30
    plan = FaultPlan.random(
        99,
        n_fibers,
        k,
        slots,
        n_outages=8,
        n_degradations=2,
        n_crashes=0,
        max_outage_slots=slots // 2,
        max_degradation_slots=slots // 2,
    )
    outage_only = FaultPlan(outages=plan.outages)

    def traffic():
        return BernoulliTraffic(
            n_fibers, k, 0.9, durations=GeometricDuration(3.0)
        )

    def run_full_faulted():
        SlottedSimulator(
            n_fibers,
            scheme,
            BreakFirstAvailableScheduler(),
            traffic(),
            seed=13,
            faults=plan,
        ).run(slots)

    def run_fast_faulted():
        # The fast engine takes outage-only plans (degradation needs the
        # per-input narrowing only the full engine implements).
        FastPacketSimulator(
            n_fibers, scheme, traffic(), seed=13, faults=outage_only
        ).run(slots)

    return {
        "full_sim_faulted": {
            "group": SIM,
            "slots": slots,
            **_time_calls(run_full_faulted, calls_full),
        },
        "fast_sim_faulted": {
            "group": SIM,
            "slots": slots,
            **_time_calls(run_fast_faulted, calls_fast),
        },
    }


def bench_journal(quick: bool) -> dict[str, dict]:
    """Durability overhead on the service tick path.

    Runs the same seeded request schedule through three otherwise
    identical services — durability off, in-memory write-ahead journal
    (the default), and the file backend — ticking all three *inside the
    same loop iteration* so machine-wide speed drift hits every variant
    equally.  The gated number is the derived ``journal_mem_overhead``:
    the median of the per-tick latency ratios (in-memory journal vs
    durability off), which pairs each tick with its contemporaneous
    baseline and so survives the run-to-run noise that sinks a
    sequential A/B comparison.  It must stay within
    ``--max-journal-overhead`` (default 10%).  The file backend is
    reported for visibility only (disk speed varies wildly across CI
    machines).
    """
    n_fibers, k = 8, 16
    ticks = 200 if quick else 600
    rng = make_rng(21)
    schedule = []
    for _tick in range(ticks):
        slot_requests = []
        for i in range(n_fibers):
            for w in range(k):
                if rng.random() < 0.5:
                    slot_requests.append(
                        SlotRequest(
                            i,
                            w,
                            int(rng.integers(n_fibers)),
                            duration=int(rng.integers(1, 4)),
                        )
                    )
        schedule.append(slot_requests)
    scheme = CircularConversion(k, 1, 1)

    def run_paired(tmp) -> dict[str, np.ndarray]:
        variants = {
            "service_tick_nodur": False,
            "service_tick_journal_mem": DurabilityConfig(snapshot_interval=16),
            "service_tick_journal_file": DurabilityConfig(
                snapshot_interval=16, backend="file", directory=tmp
            ),
        }

        async def go():
            services = {
                name: SchedulingService(
                    n_fibers, scheme, BreakFirstAvailableScheduler(),
                    durability=durability,
                )
                for name, durability in variants.items()
            }
            samples = {
                name: np.empty(ticks, dtype=float) for name in services
            }
            futures = []
            for i, slot_requests in enumerate(schedule):
                for name, service in services.items():
                    for r in slot_requests:
                        futures.append(service.submit_nowait(r))
                    t0 = time.perf_counter()
                    await service.tick()
                    samples[name][i] = time.perf_counter() - t0
            for service in services.values():
                await service.drain()
            await asyncio.gather(*futures)
            for service in services.values():
                await service.stop()
            return samples

        return asyncio.run(go())

    with tempfile.TemporaryDirectory() as tmp:
        run_paired(tmp + "/warmup")  # imports, allocator, bytecode caches
        samples = run_paired(tmp + "/run")
    out = {}
    for name, s in samples.items():
        out[name] = {
            "group": SERVICE,
            "calls": ticks,
            "ops_per_s": ticks / float(s.sum()),
            "p50_s": float(np.percentile(s, 50)),
            "p99_s": float(np.percentile(s, 99)),
        }
    out["service_tick_journal_mem"]["overhead_vs_nodur"] = float(
        np.median(
            samples["service_tick_journal_mem"]
            / samples["service_tick_nodur"]
        )
        - 1.0
    )
    return out


def bench_qos(quick: bool) -> dict[str, dict]:
    """Multi-tenant accounting overhead on the service tick path.

    Same paired discipline as :func:`bench_journal`: a single-tenant
    service (fixed-priority policy, DROP_TAIL overflow, every request
    tenant 0) and a QoS service (weighted fair policy, SHED admission
    keyed by the same weights, requests spread across three tenants) are
    ticked inside the same loop iteration on the same seeded request
    schedule.  The gated number is the median of the per-tick latency
    ratios — the cost of tenant bookkeeping, deficit-credit grant
    selection, and per-tenant telemetry, isolated from machine drift.
    Admission (which runs in ``submit_nowait``, off the tick path) is
    exercised but deliberately outside the timed region: the acceptance
    gate is about steady-state tick latency.
    """
    n_fibers, k = 8, 16
    ticks = 200 if quick else 600
    weights = {0: 4, 1: 2, 2: 1}
    rng = make_rng(23)
    schedule = []
    for _tick in range(ticks):
        slot_requests = []
        for i in range(n_fibers):
            for w in range(k):
                if rng.random() < 0.5:
                    slot_requests.append(
                        SlotRequest(
                            i,
                            w,
                            int(rng.integers(n_fibers)),
                            duration=int(rng.integers(1, 4)),
                            tenant=(i + w) % 3,
                        )
                    )
        schedule.append(slot_requests)
    scheme = CircularConversion(k, 1, 1)

    def run_paired() -> dict[str, np.ndarray]:
        async def go():
            services = {
                "service_tick_single_tenant": SchedulingService(
                    n_fibers,
                    scheme,
                    BreakFirstAvailableScheduler(),
                    queue_capacity=64,
                    overflow=OverflowPolicy.DROP_TAIL,
                    durability=False,
                ),
                "service_tick_qos": SchedulingService(
                    n_fibers,
                    scheme,
                    BreakFirstAvailableScheduler(),
                    policy=WeightedFairPolicy(weights),
                    queue_capacity=64,
                    overflow=OverflowPolicy.SHED,
                    admission=TenantAdmission(weights),
                    durability=False,
                ),
            }
            samples = {
                name: np.empty(ticks, dtype=float) for name in services
            }
            futures = []
            for i, slot_requests in enumerate(schedule):
                for name, service in services.items():
                    single = name == "service_tick_single_tenant"
                    for r in slot_requests:
                        if single and r.tenant:
                            r = SlotRequest(
                                r.input_fiber,
                                r.wavelength,
                                r.output_fiber,
                                duration=r.duration,
                            )
                        futures.append(service.submit_nowait(r))
                    t0 = time.perf_counter()
                    await service.tick()
                    samples[name][i] = time.perf_counter() - t0
            for service in services.values():
                await service.drain()
            await asyncio.gather(*futures, return_exceptions=True)
            for service in services.values():
                await service.stop()
            return samples

        return asyncio.run(go())

    run_paired()  # warmup: imports, allocator, bytecode caches
    samples = run_paired()
    out = {}
    for name, s in samples.items():
        out[name] = {
            "group": QOS,
            "calls": ticks,
            "ops_per_s": ticks / float(s.sum()),
            "p50_s": float(np.percentile(s, 50)),
            "p99_s": float(np.percentile(s, 99)),
        }
    out["service_tick_qos"]["overhead_vs_single_tenant"] = float(
        np.median(
            samples["service_tick_qos"]
            / samples["service_tick_single_tenant"]
        )
        - 1.0
    )
    return out


def bench_window(quick: bool) -> dict[str, dict]:
    """Tick-window amortization on a backlogged service (informational).

    The same seeded backlog is drained twice through otherwise identical
    durable services: one ticking once per event-loop iteration
    (``tick_window=1``, the pre-window behavior) and one catching up in
    bursts of 8 (``tick_window=8``, with idle shards' ADVANCE journal
    records coalesced per burst).  ``ops_per_s`` is ticks/s over the full
    drain; the derived ``window_amortization`` ratio shows what the
    window buys.  Not gated — the win depends on how deep queues run —
    but the JSON diff makes drift visible.
    """
    n_fibers, k = 8, 16
    n_requests = 400 if quick else 1200
    rng = make_rng(29)
    requests = [
        SlotRequest(
            int(rng.integers(n_fibers)),
            int(rng.integers(k)),
            int(rng.integers(n_fibers)),
            duration=int(rng.integers(1, 4)),
        )
        for _ in range(n_requests)
    ]
    scheme = CircularConversion(k, 1, 1)

    def run(window: int) -> tuple[int, float]:
        async def go():
            service = SchedulingService(
                n_fibers,
                scheme,
                BreakFirstAvailableScheduler(),
                max_batch_per_tick=4,
                tick_window=window,
            )
            futures = [service.submit_nowait(r) for r in requests]
            t0 = time.perf_counter()
            while service.queue_depth_total > 0:
                await service.tick_burst()
            elapsed = time.perf_counter() - t0
            ticks = service.slot
            await asyncio.gather(*futures)
            await service.stop()
            return ticks, elapsed

        return asyncio.run(go())

    out = {}
    for name, window in (
        ("service_burst_w1", 1),
        ("service_burst_w8", 8),
    ):
        run(window)  # warmup: imports, allocator, bytecode caches
        ticks, elapsed = run(window)
        out[name] = {
            "group": SERVICE,
            "calls": ticks,
            "ops_per_s": ticks / elapsed,
            "p50_s": elapsed / ticks,
            "p99_s": elapsed / ticks,
            "tick_window": window,
        }
    return out


def bench_net(quick: bool) -> dict[str, dict]:
    """The TCP front door under external multi-process load: a
    single-process backend vs ≥2-worker multi-process shard placement
    (:mod:`benchmarks.bench_net`).  ``ops_per_s`` is ticks/s; p50/p99
    are per-request wire latencies from the load processes."""
    from bench_net import run_net_bench

    requests = 120 if quick else 400
    out = {}
    for name, workers in (
        ("net_tcp_single_process", 0),
        ("net_tcp_two_workers", 2),
    ):
        r = run_net_bench(workers=workers, requests=requests)
        if not r.conserved:
            raise RuntimeError(
                f"{name}: conservation violated "
                f"({r.submitted} != {r.granted} + {r.rejected})"
            )
        out[name] = {
            "group": NET,
            "calls": r.ticks,
            "ops_per_s": r.ticks_per_second,
            "p50_s": r.p50_ms / 1e3,
            "p99_s": r.p99_ms / 1e3,
            "workers": workers,
            "submitted": r.submitted,
            "granted": r.granted,
        }
    return out


def bench_reshard(quick: bool) -> dict[str, dict]:
    """Live-migration pause vs. the baseline tick on the same service
    (:mod:`benchmarks.bench_reshard`).  The gated figure is the derived
    ``reshard_stall_ticks`` — migration-pause p50 over tick-latency p50,
    i.e. how many slots of scheduling one live move displaces.  Both
    sides of the ratio run in the same process against the same worker
    pool, so machine drift cancels the way it does in the paired
    service benchmarks."""
    from bench_reshard import run_reshard_bench

    ticks = 60 if quick else 200
    r = run_reshard_bench(ticks, migrate_every=10)
    if not r.conserved:
        raise RuntimeError("reshard bench: a submission went unresolved")
    return {
        "reshard_tick_baseline": {
            "group": RESHARD,
            "calls": r.ticks,
            "ops_per_s": 1.0 / r.tick_p50_s,
            "p50_s": r.tick_p50_s,
            "p99_s": r.tick_p99_s,
        },
        "reshard_migration_pause": {
            "group": RESHARD,
            "calls": r.migrations,
            "ops_per_s": 1.0 / r.pause_p50_s,
            "p50_s": r.pause_p50_s,
            "p99_s": r.pause_p99_s,
            "payload_p50_bytes": r.payload_p50_bytes,
        },
    }


#: ``--profile`` targets: one cProfile run per benchmark suite function.
PROFILE_TARGETS = {
    "kernels": bench_kernels,
    "scheduler_cache": bench_scheduler_cache,
    "sims": bench_sims,
    "faults": bench_faults,
    "journal": bench_journal,
    "qos": bench_qos,
    "window": bench_window,
    "net": bench_net,
    "reshard": bench_reshard,
}


def run_suite(quick: bool) -> dict:
    benchmarks: dict[str, dict] = {}
    benchmarks.update(bench_kernels(quick))
    benchmarks.update(bench_scheduler_cache(quick))
    benchmarks.update(bench_sims(quick))
    benchmarks.update(bench_faults(quick))
    benchmarks.update(bench_journal(quick))
    benchmarks.update(bench_qos(quick))
    benchmarks.update(bench_window(quick))
    benchmarks.update(bench_net(quick))
    benchmarks.update(bench_reshard(quick))
    # Steady-state ratio: p50 excludes the fast engine's single cold-cache
    # call (its p99), which would otherwise drag a mean-based comparison.
    speedup = (
        benchmarks["full_sim_multislot"]["p50_s"]
        / benchmarks["fast_sim_multislot"]["p50_s"]
    )
    journal_overhead = benchmarks["service_tick_journal_mem"][
        "overhead_vs_nodur"
    ]
    qos_overhead = benchmarks["service_tick_qos"][
        "overhead_vs_single_tenant"
    ]
    net_speedup = (
        benchmarks["net_tcp_two_workers"]["ops_per_s"]
        / benchmarks["net_tcp_single_process"]["ops_per_s"]
    )
    try:
        import numba

        numba_version: str | None = numba.__version__
    except ImportError:
        numba_version = None
    return {
        "meta": {
            "version": 3,
            "quick": quick,
            "python": platform.python_version(),
            "numpy": np.__version__,
            # The honest basis of the kernel gates: ops/s from different
            # kernel backends are not comparable, so compare() refuses to
            # gate across a backend mismatch, and the compiled-speedup
            # gate only binds when the Numba backend actually ran.
            "kernel_backend": kernel_registry.get_backend().name,
            "numba_version": numba_version,
            # The honest basis of the net gate: with one CPU the worker
            # processes time-share a core and multi-process ticks/s
            # legitimately trails single-process.
            "cpus": os.cpu_count(),
        },
        "benchmarks": benchmarks,
        "derived": {
            "multislot_speedup": speedup,
            "journal_mem_overhead": journal_overhead,
            "qos_overhead": qos_overhead,
            "net_multiproc_speedup": net_speedup,
            "compiled_fa_speedup": (
                benchmarks["batch_fa_kernel"]["ops_per_s"]
                / benchmarks["batch_fa_kernel_python"]["ops_per_s"]
            ),
            "compiled_bfa_speedup": (
                benchmarks["batch_bfa_kernel"]["ops_per_s"]
                / benchmarks["batch_bfa_kernel_python"]["ops_per_s"]
            ),
            "window_amortization": (
                benchmarks["service_burst_w8"]["ops_per_s"]
                / benchmarks["service_burst_w1"]["ops_per_s"]
            ),
            "reshard_stall_ticks": (
                benchmarks["reshard_migration_pause"]["p50_s"]
                / benchmarks["reshard_tick_baseline"]["p50_s"]
            ),
        },
    }


def compare(current: dict, baseline: dict, threshold: float) -> list[str]:
    """Regression messages for gated (kernel-group) benchmarks; empty = pass.

    Refuses to gate when the two runs used different kernel backends
    (``meta.kernel_backend``): a compiled run would trivially pass against
    a pure-Python baseline and a pure-Python run would spuriously fail
    against a compiled one — neither is a regression signal.  Baselines
    written before the backend field existed are treated as the NumPy
    backend, which is what they ran.
    """
    cur_backend = current["meta"].get("kernel_backend", "numpy")
    base_backend = baseline["meta"].get("kernel_backend", "numpy")
    if cur_backend != base_backend:
        print(
            f"kernel regression gate skipped: current run used the "
            f"{cur_backend!r} kernel backend but the baseline used "
            f"{base_backend!r}; ops/s are not comparable across backends "
            f"(re-baseline with --out on the matching backend)"
        )
        return []
    failures = []
    for name, base in baseline["benchmarks"].items():
        if base.get("group") != KERNEL:
            continue
        now = current["benchmarks"].get(name)
        if now is None:
            failures.append(f"{name}: missing from current run")
            continue
        floor = base["ops_per_s"] * (1.0 - threshold)
        if now["ops_per_s"] < floor:
            failures.append(
                f"{name}: {now['ops_per_s']:.1f} ops/s < "
                f"{floor:.1f} ({base['ops_per_s']:.1f} - {threshold:.0%})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=None,
                        help="write the run's JSON document here")
    parser.add_argument("--quick", action="store_true",
                        help="reduced repeat counts (CI mode)")
    parser.add_argument("--compare", type=Path, default=None,
                        help="baseline JSON; exit 1 on kernel regression")
    parser.add_argument("--threshold", type=float,
                        default=REGRESSION_THRESHOLD,
                        help="allowed fractional ops/s drop (default 0.30)")
    parser.add_argument("--min-speedup", type=float,
                        default=MIN_MULTISLOT_SPEEDUP,
                        help="required fast/full multi-slot ratio (default 5)")
    parser.add_argument("--max-journal-overhead", type=float,
                        default=MAX_JOURNAL_OVERHEAD,
                        help="allowed in-memory journal p50 tick-latency "
                             "overhead vs durability off (default 0.10)")
    parser.add_argument("--max-qos-overhead", type=float,
                        default=MAX_QOS_OVERHEAD,
                        help="allowed multi-tenant QoS p50 tick-latency "
                             "overhead vs a single-tenant service "
                             "(default 0.10)")
    parser.add_argument("--min-net-speedup", type=float,
                        default=MIN_NET_SPEEDUP,
                        help="required two-worker/single-process TCP "
                             "ticks/s ratio; only enforced when "
                             "os.cpu_count() > 1 (default 1.0)")
    parser.add_argument("--min-compiled-speedup", type=float,
                        default=MIN_COMPILED_SPEEDUP,
                        help="required batch-BFA ops/s ratio of the active "
                             "kernel backend over the pure-Python reference; "
                             "only enforced when the numba backend is active "
                             "(default 10.0)")
    parser.add_argument("--max-reshard-stall", type=float,
                        default=MAX_RESHARD_STALL_TICKS,
                        help="allowed live-migration pause, measured in "
                             "baseline ticks displaced per move "
                             "(default 20)")
    parser.add_argument("--profile", metavar="SUITE", default=None,
                        choices=sorted(PROFILE_TARGETS),
                        help="profile one benchmark suite under cProfile, "
                             "write <SUITE>.pstats, and exit (choices: "
                             + ", ".join(sorted(PROFILE_TARGETS)) + ")")
    args = parser.parse_args(argv)

    if args.profile:
        target = PROFILE_TARGETS[args.profile]
        profiler = cProfile.Profile()
        profiler.enable()
        target(args.quick)
        profiler.disable()
        out = Path(f"{args.profile}.pstats")
        profiler.dump_stats(out)
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(20)
        print(f"wrote {out}")
        return 0

    result = run_suite(args.quick)
    for name, b in sorted(result["benchmarks"].items()):
        print(
            f"{name:24s} [{b['group']:6s}] {b['ops_per_s']:12.1f} ops/s  "
            f"p50 {b['p50_s'] * 1e3:8.3f} ms  p99 {b['p99_s'] * 1e3:8.3f} ms"
        )
    speedup = result["derived"]["multislot_speedup"]
    print(f"multislot speedup (fast vs full engine): {speedup:.1f}x")
    journal_overhead = result["derived"]["journal_mem_overhead"]
    print(
        f"in-memory journal tick-latency overhead: {journal_overhead:+.1%}"
    )
    qos_overhead = result["derived"]["qos_overhead"]
    print(
        f"multi-tenant QoS tick-latency overhead: {qos_overhead:+.1%}"
    )
    net_speedup = result["derived"]["net_multiproc_speedup"]
    cpus = result["meta"]["cpus"]
    print(
        f"TCP two-worker vs single-process ticks/s: {net_speedup:.2f}x "
        f"({cpus} cpu{'s' if cpus != 1 else ''})"
    )
    backend = result["meta"]["kernel_backend"]
    fa_speedup = result["derived"]["compiled_fa_speedup"]
    bfa_speedup = result["derived"]["compiled_bfa_speedup"]
    print(
        f"kernel backend {backend!r} vs python reference: "
        f"FA {fa_speedup:.1f}x, BFA {bfa_speedup:.1f}x"
    )
    window_gain = result["derived"]["window_amortization"]
    print(f"tick-window amortization (W=8 vs W=1 ticks/s): {window_gain:.2f}x")
    stall = result["derived"]["reshard_stall_ticks"]
    print(f"live-migration pause: {stall:.1f} baseline ticks per move")

    if args.out:
        args.out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.out}")

    status = 0
    if speedup < args.min_speedup:
        print(f"FAIL: multislot speedup {speedup:.1f}x < {args.min_speedup}x")
        status = 1
    if journal_overhead > args.max_journal_overhead:
        print(
            f"FAIL: journal overhead {journal_overhead:.1%} > "
            f"{args.max_journal_overhead:.0%}"
        )
        status = 1
    if qos_overhead > args.max_qos_overhead:
        print(
            f"FAIL: QoS overhead {qos_overhead:.1%} > "
            f"{args.max_qos_overhead:.0%}"
        )
        status = 1
    if stall > args.max_reshard_stall:
        print(
            f"FAIL: live-migration stall {stall:.1f} ticks/move > "
            f"{args.max_reshard_stall}"
        )
        status = 1
    if cpus is not None and cpus > 1:
        if net_speedup < args.min_net_speedup:
            print(
                f"FAIL: net multi-process speedup {net_speedup:.2f}x < "
                f"{args.min_net_speedup}x"
            )
            status = 1
    else:
        print(
            "net speedup gate skipped: single-CPU machine "
            "(worker processes time-share one core)"
        )
    if backend == "numba":
        if bfa_speedup < args.min_compiled_speedup:
            print(
                f"FAIL: compiled BFA speedup {bfa_speedup:.1f}x < "
                f"{args.min_compiled_speedup}x over the python reference"
            )
            status = 1
    else:
        print(
            f"compiled speedup gate skipped: active kernel backend is "
            f"{backend!r}, not 'numba' (install the 'compiled' extra)"
        )
    if args.compare:
        baseline = json.loads(args.compare.read_text())
        failures = compare(result, baseline, args.threshold)
        for f in failures:
            print(f"REGRESSION: {f}")
        if failures:
            status = 1
        else:
            print(f"no kernel regressions vs {args.compare}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
