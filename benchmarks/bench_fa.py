"""Benchmark TAB2 / CPLX-K (First Available): the O(k) algorithm itself, its
optimality sweep, and its k-scaling."""

import pytest

from repro.analysis.instances import random_request_vector
from repro.core.baseline import HopcroftKarpScheduler
from repro.core.first_available import FirstAvailableScheduler, first_available_fast
from repro.experiments.registry import run_experiment
from repro.util.rng import make_rng


def test_tab2_fa_optimality_sweep(benchmark):
    res = benchmark.pedantic(
        run_experiment, args=("TAB2",), kwargs={"trials": 10}, rounds=1, iterations=1
    )
    assert res.passed, res.render()


def test_fa_single_pass_k64(benchmark, noncircular_64):
    grants = benchmark(
        first_available_fast,
        noncircular_64.request_vector,
        noncircular_64.available,
        2,
        2,
    )
    assert len(grants) == HopcroftKarpScheduler().schedule(noncircular_64).n_granted


@pytest.mark.parametrize("k", [256, 1024, 4096])
def test_fa_scaling_in_k(benchmark, k):
    """CPLX-K series: time one FA pass at several k (linear growth)."""
    rng = make_rng(k)
    vec = random_request_vector(k, 16, 0.9, rng)
    avail = [True] * k
    grants = benchmark(first_available_fast, vec, avail, 2, 2)
    assert 0 < len(grants) <= k


def test_fa_scheduler_end_to_end(benchmark, noncircular_64):
    scheduler = FirstAvailableScheduler()
    res = benchmark(scheduler.schedule, noncircular_64)
    assert res.n_granted > 0
