"""Benchmark the TCP front door: ticks/s and request p50/p99 over the
wire, single-process vs multi-process shard placement.

Run standalone for the full sweep::

    PYTHONPATH=src python benchmarks/bench_net.py

or under pytest for a smoke-sized run with shape assertions.  The load
always comes from **separate OS processes** (:mod:`repro.net.loadgen`),
so the numbers include real kernel socket hops and pickling — this is
the deployment shape, not an in-process shortcut.  On a multi-core
machine the ≥2-worker backend should sustain more ticks/s than the
single-process baseline (the per-output sub-problems run concurrently);
on a single core the comparison is recorded but not gated
(``benchmarks/harness.py`` checks ``os.cpu_count()``).
"""

from __future__ import annotations

import asyncio
import threading
from contextlib import contextmanager
from dataclasses import dataclass

from repro.core.first_available import FirstAvailableScheduler
from repro.graphs.conversion import NonCircularConversion
from repro.net.loadgen import NetLoadReport, run_load
from repro.net.procservice import ProcessShardedService
from repro.net.server import NetServer
from repro.service import SchedulingService
from repro.util.tables import format_table


@dataclass
class NetBenchResult:
    backend: str
    workers: int
    processes: int
    submitted: int
    granted: int
    rejected: int
    ticks: int
    elapsed: float
    ticks_per_second: float
    p50_ms: float
    p99_ms: float
    conserved: bool


@contextmanager
def serve_backend(n_fibers: int, k: int, workers: int):
    """Bring a backend up behind a :class:`NetServer` on a background
    event-loop thread; yields the TCP port.  ``workers=0`` serves the
    in-process :class:`SchedulingService`, ``workers>=1`` the
    multi-process :class:`ProcessShardedService`.
    """
    loop = asyncio.new_event_loop()
    ready = threading.Event()
    state: dict = {}

    async def _up():
        if workers == 0:
            service = SchedulingService(
                n_fibers,
                NonCircularConversion(k, 1, 1),
                FirstAvailableScheduler(),
                durability=False,
            )
        else:
            service = ProcessShardedService(
                n_fibers,
                NonCircularConversion(k, 1, 1),
                FirstAvailableScheduler(),
                n_workers=workers,
            )
        server = NetServer(service)
        await server.start()
        state["service"], state["server"] = service, server
        return server.port

    def _thread():
        asyncio.set_event_loop(loop)
        loop.call_soon(ready.set)
        loop.run_forever()

    t = threading.Thread(target=_thread, name="bench-net-loop", daemon=True)
    t.start()
    ready.wait()
    port = asyncio.run_coroutine_threadsafe(_up(), loop).result(60)
    try:
        yield port
    finally:
        async def _down():
            await state["server"].stop()
            await state["service"].stop()

        asyncio.run_coroutine_threadsafe(_down(), loop).result(60)
        loop.call_soon_threadsafe(loop.stop)
        t.join(timeout=10.0)


def run_net_bench(
    *,
    workers: int = 0,
    n_fibers: int = 8,
    k: int = 4,
    processes: int = 2,
    requests: int = 300,
    seed: int = 0,
) -> NetBenchResult:
    """One backend configuration under external multi-process load."""
    with serve_backend(n_fibers, k, workers) as port:
        report: NetLoadReport = run_load(
            "127.0.0.1",
            port,
            processes=processes,
            requests_per_process=requests,
            seed=seed,
        )
    return NetBenchResult(
        backend="single-process" if workers == 0 else "multi-process",
        workers=workers,
        processes=processes,
        submitted=report.submitted,
        granted=report.granted,
        rejected=report.rejected,
        ticks=report.ticks,
        elapsed=report.elapsed,
        ticks_per_second=report.ticks_per_second,
        p50_ms=report.p50_ms,
        p99_ms=report.p99_ms,
        conserved=report.conserved,
    )


def sweep(worker_counts=(0, 2, 4), **kwargs) -> list[NetBenchResult]:
    return [run_net_bench(workers=w, **kwargs) for w in worker_counts]


def render(results: list[NetBenchResult]) -> str:
    return format_table(
        ["backend", "workers", "load procs", "submitted", "granted",
         "ticks/s", "p50 (ms)", "p99 (ms)"],
        [
            (r.backend, r.workers, r.processes, r.submitted, r.granted,
             r.ticks_per_second, r.p50_ms, r.p99_ms)
            for r in results
        ],
        title="TCP front door: external-process load, single- vs "
        "multi-process shard placement (k=4, Bernoulli-ish random load)",
    )


# -- pytest entry points (smoke-sized: shapes, not absolute speed) ----------

def test_net_bench_single_process_shape():
    r = run_net_bench(workers=0, requests=60)
    assert r.conserved
    assert r.submitted == 2 * 60
    assert r.granted > 0
    assert r.ticks_per_second > 0
    assert 0.0 < r.p50_ms <= r.p99_ms


def test_net_bench_multi_process_shape():
    r = run_net_bench(workers=2, requests=60)
    assert r.conserved
    assert r.granted > 0
    assert r.ticks_per_second > 0


def main() -> None:
    results = sweep()
    print(render(results))
    single = next(r for r in results if r.workers == 0)
    for r in results:
        if r.workers > 0:
            ratio = r.ticks_per_second / single.ticks_per_second
            print(
                f"{r.workers} workers vs single-process: "
                f"{ratio:.2f}x ticks/s"
            )
    if not all(r.conserved for r in results):
        raise SystemExit("conservation violated")


if __name__ == "__main__":
    main()
