"""Benchmark CPLX-HK: the distributed algorithms vs the Hopcroft–Karp
baseline [1] on identical request graphs."""

from repro.core.baseline import HopcroftKarpScheduler
from repro.core.break_first_available import bfa_fast
from repro.core.first_available import first_available_fast
from repro.experiments.registry import run_experiment


def test_cplx_hk_experiment(benchmark):
    res = benchmark.pedantic(
        run_experiment, args=("CPLX-HK",), rounds=1, iterations=1
    )
    assert res.passed, res.render()


def test_hopcroft_karp_on_circular_k64(benchmark, circular_64):
    scheduler = HopcroftKarpScheduler()
    res = benchmark(scheduler.schedule, circular_64)
    assert res.n_granted > 0


def test_bfa_same_instance_k64(benchmark, circular_64):
    """Compare this timing against the Hopcroft–Karp one above: the paper's
    O(dk) vs O(sqrt(n)(m+n)) separation."""
    grants, _ = benchmark(
        bfa_fast, circular_64.request_vector, circular_64.available, 2, 2
    )
    assert len(grants) == HopcroftKarpScheduler().schedule(circular_64).n_granted


def test_hopcroft_karp_on_noncircular_k64(benchmark, noncircular_64):
    scheduler = HopcroftKarpScheduler()
    res = benchmark(scheduler.schedule, noncircular_64)
    assert res.n_granted > 0


def test_fa_same_instance_k64(benchmark, noncircular_64):
    grants = benchmark(
        first_available_fast,
        noncircular_64.request_vector,
        noncircular_64.available,
        2,
        2,
    )
    assert (
        len(grants)
        == HopcroftKarpScheduler().schedule(noncircular_64).n_granted
    )
