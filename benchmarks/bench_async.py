"""Benchmark ASYNC: the asynchronous FCFS regime and its event engine."""

from repro.analysis.analytical import erlang_b
from repro.experiments.registry import run_experiment
from repro.graphs.conversion import CircularConversion, FullRangeConversion
from repro.sim.asynchronous import AsyncWavelengthRouter


def test_async_experiment(benchmark):
    res = benchmark.pedantic(
        run_experiment,
        args=("ASYNC",),
        kwargs={"n_fibers": 2, "k": 8, "erlangs": 6.0, "sim_time": 1500.0},
        rounds=1,
        iterations=1,
    )
    assert res.passed, res.render()


def test_event_engine_throughput(benchmark):
    """Events per second of the heapq engine (2 fibers, heavy load)."""
    def run():
        router = AsyncWavelengthRouter(
            2, CircularConversion(16, 1, 1), arrival_rate=12.0, seed=1
        )
        return router.run(500.0)

    res = benchmark(run)
    assert res.offered > 0


def test_erlang_validation_point(benchmark):
    def run():
        router = AsyncWavelengthRouter(
            2, FullRangeConversion(8), arrival_rate=6.0, seed=2
        )
        return router.run(1000.0, warmup=100.0)

    res = benchmark.pedantic(run, rounds=2, iterations=1)
    assert abs(res.blocking_probability - erlang_b(6.0, 8)) < 0.03
