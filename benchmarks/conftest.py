"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one paper artifact (figure/table/claim) and
asserts its shape, so ``pytest benchmarks/ --benchmark-only`` doubles as the
reproduction harness with timing attached.
"""

from __future__ import annotations

import pytest

from repro.analysis.instances import (
    random_circular_instance,
    random_noncircular_instance,
)
from repro.util.rng import make_rng


@pytest.fixture
def rng():
    return make_rng(20030422)


@pytest.fixture
def circular_16(rng):
    """A saturated k=16, d=3 circular request graph."""
    return random_circular_instance(16, 1, 1, load=1.0, rng=rng)


@pytest.fixture
def circular_64(rng):
    """A saturated k=64, d=5 circular request graph."""
    return random_circular_instance(64, 2, 2, load=1.0, rng=rng)


@pytest.fixture
def noncircular_64(rng):
    """A saturated k=64, d=5 non-circular request graph."""
    return random_noncircular_instance(64, 2, 2, load=1.0, rng=rng)
