"""Benchmark the asyncio scheduling service: sustained requests/sec and
p50/p99 grant latency as a function of shard count and execution mode.

Run standalone for the full sweep::

    PYTHONPATH=src python benchmarks/bench_service.py

or under pytest (``pytest benchmarks/bench_service.py``) for a smaller
smoke-sized sweep with shape assertions.  The per-output decomposition says
work per slot is ``O(N·k)`` with perfect shardability — so requests/sec
should scale with shard count until the event loop (INLINE) or the GIL
(THREADS) saturates, and the VECTORIZED batch path should lift the
large-``N`` ceiling.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.service import ExecutionMode, LoadGenerator, SchedulingService
from repro.sim.traffic import BernoulliTraffic
from repro.graphs.conversion import CircularConversion
from repro.util.tables import format_table


@dataclass
class ServiceBenchResult:
    shards: int
    mode: str
    offered: int
    granted: int
    requests_per_sec: float
    grant_rate: float
    p50_ms: float
    p99_ms: float


def run_service_bench(
    n_fibers: int,
    k: int = 16,
    load: float = 0.85,
    n_slots: int = 150,
    mode: ExecutionMode = ExecutionMode.INLINE,
    seed: int = 20030422,
) -> ServiceBenchResult:
    """Drive one service configuration to completion and report it."""

    async def go() -> ServiceBenchResult:
        service = SchedulingService(
            n_fibers,
            CircularConversion(k, 1, 1),
            BreakFirstAvailableScheduler(),
            mode=mode,
            tick_interval=0.0,
        )
        generator = LoadGenerator(
            service, BernoulliTraffic(n_fibers, k, load=load), seed=seed
        )
        report = await generator.run(n_slots)
        await service.stop()
        return ServiceBenchResult(
            shards=n_fibers,
            mode=mode.value,
            offered=report.offered,
            granted=report.granted,
            requests_per_sec=report.requests_per_sec,
            grant_rate=report.grant_rate,
            p50_ms=report.p50_latency * 1e3,
            p99_ms=report.p99_latency * 1e3,
        )

    return asyncio.run(go())


def sweep(
    shard_counts=(4, 8, 16, 32),
    modes=(ExecutionMode.INLINE, ExecutionMode.THREADS, ExecutionMode.VECTORIZED),
    **kwargs,
) -> list[ServiceBenchResult]:
    return [
        run_service_bench(n, mode=mode, **kwargs)
        for mode in modes
        for n in shard_counts
    ]


def render(results: list[ServiceBenchResult]) -> str:
    return format_table(
        ["mode", "shards", "offered", "granted", "req/s", "grant rate",
         "p50 (ms)", "p99 (ms)"],
        [
            (r.mode, r.shards, r.offered, r.granted, r.requests_per_sec,
             r.grant_rate, r.p50_ms, r.p99_ms)
            for r in results
        ],
        title="Scheduling service: sustained throughput and grant latency "
        "(k=16, d=3, Bernoulli load 0.85, one tick per slot)",
    )


# -- pytest entry points (smoke-sized: shapes, not absolute speed) ----------

def test_service_throughput_two_shard_counts():
    """Acceptance shape: ≥2 shard counts, each reporting req/s and p50/p99."""
    results = [run_service_bench(n, n_slots=40) for n in (4, 16)]
    for r in results:
        assert r.offered > 0
        assert 0 < r.granted <= r.offered
        assert r.requests_per_sec > 0
        assert 0.0 < r.p50_ms <= r.p99_ms
    # 4× the shards at the same per-channel load ⇒ ~4× offered requests.
    assert results[1].offered > 2 * results[0].offered


def test_service_modes_agree_on_grants():
    grants = {
        mode: run_service_bench(8, n_slots=30, mode=mode).granted
        for mode in (
            ExecutionMode.INLINE,
            ExecutionMode.THREADS,
            ExecutionMode.VECTORIZED,
        )
    }
    assert len(set(grants.values())) == 1, grants


def main() -> None:
    results = sweep()
    print(render(results))
    best = max(results, key=lambda r: r.requests_per_sec)
    print(
        f"\npeak sustained throughput: {best.requests_per_sec:,.0f} req/s "
        f"({best.mode}, {best.shards} shards, "
        f"p50 {best.p50_ms:.2f} ms, p99 {best.p99_ms:.2f} ms)"
    )


if __name__ == "__main__":
    main()
