"""Benchmark the distributed per-output facade and the full datapath check
(supporting CPLX-N: per-slot work scales as N independent O(dk) passes)."""

from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.core.distributed import DistributedScheduler, SlotRequest
from repro.graphs.conversion import CircularConversion
from repro.interconnect.interconnect import WDMInterconnect
from repro.util.rng import make_rng


def _slot_requests(n, k, seed):
    rng = make_rng(seed)
    return [
        SlotRequest(i, w, int(rng.integers(n)))
        for i in range(n)
        for w in range(k)
        if rng.random() < 0.7
    ]


def test_distributed_slot_16x16(benchmark):
    scheme = CircularConversion(16, 1, 1)
    ds = DistributedScheduler(16, scheme, BreakFirstAvailableScheduler())
    reqs = _slot_requests(16, 16, 4)
    schedule = benchmark(ds.schedule_slot, reqs)
    assert schedule.n_granted + schedule.n_rejected == len(reqs)


def test_distributed_slot_64x16(benchmark):
    """4× the fibers ≈ 4× the work (N independent subproblems)."""
    scheme = CircularConversion(16, 1, 1)
    ds = DistributedScheduler(64, scheme, BreakFirstAvailableScheduler())
    reqs = _slot_requests(64, 16, 5)
    schedule = benchmark(ds.schedule_slot, reqs)
    assert schedule.n_granted + schedule.n_rejected == len(reqs)


def test_datapath_route_schedule(benchmark):
    scheme = CircularConversion(8, 1, 1)
    ds = DistributedScheduler(8, scheme, BreakFirstAvailableScheduler())
    schedule = ds.schedule_slot(_slot_requests(8, 8, 6))
    ic = WDMInterconnect(8, scheme)
    routed = benchmark(ic.route_schedule, schedule)
    assert len(routed) == schedule.n_granted
