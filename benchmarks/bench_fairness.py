"""Benchmark FAIR: grant-policy fairness under hotspot traffic."""

from repro.core.policies import (
    FixedPriorityPolicy,
    RandomPolicy,
    RoundRobinPolicy,
)
from repro.experiments.registry import run_experiment


def test_fair_experiment(benchmark):
    res = benchmark.pedantic(
        run_experiment,
        args=("FAIR",),
        kwargs={"n_fibers": 4, "k": 6, "slots": 150},
        rounds=1,
        iterations=1,
    )
    assert res.passed, res.render()


def _select_many(policy):
    requesters = list(range(16))
    out = 0
    for slot in range(200):
        out += len(policy.select(0, slot % 4, requesters, 3))
    return out


def test_fixed_priority_select(benchmark):
    assert benchmark(_select_many, FixedPriorityPolicy()) == 600


def test_random_select(benchmark):
    assert benchmark.pedantic(
        _select_many, args=(RandomPolicy(1),), rounds=20, iterations=1
    ) == 600


def test_round_robin_select(benchmark):
    assert benchmark.pedantic(
        _select_many, args=(RoundRobinPolicy(),), rounds=20, iterations=1
    ) == 600
