"""Benchmark the fast-path simulator against the full engine.

Supports the BATCH story at system level: the vectorized slot loop wins
increasingly with interconnect size N.
"""

import numpy as np

from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.graphs.conversion import CircularConversion
from repro.sim.engine import SlottedSimulator
from repro.sim.fast import FastPacketSimulator
from repro.sim.traffic import BernoulliTraffic

N, K, SLOTS = 16, 16, 100


def test_full_engine_n16(benchmark):
    def run():
        return SlottedSimulator(
            N,
            CircularConversion(K, 1, 1),
            BreakFirstAvailableScheduler(),
            BernoulliTraffic(N, K, 0.9),
            seed=1,
        ).run(SLOTS)

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    assert res.metrics.n_slots == SLOTS


def test_fast_path_exact_stream_n16(benchmark):
    def run():
        return FastPacketSimulator(
            N, CircularConversion(K, 1, 1), BernoulliTraffic(N, K, 0.9), seed=1
        ).run(SLOTS)

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    # Exact equivalence with the full engine above (same seed).
    full = SlottedSimulator(
        N,
        CircularConversion(K, 1, 1),
        BreakFirstAvailableScheduler(),
        BernoulliTraffic(N, K, 0.9),
        seed=1,
    ).run(SLOTS)
    assert np.array_equal(
        res.metrics.granted_series(), full.metrics.granted_series()
    )


def test_fast_path_vectorized_n16(benchmark):
    def run():
        return FastPacketSimulator(
            N,
            CircularConversion(K, 1, 1),
            BernoulliTraffic(N, K, 0.9),
            seed=1,
            vectorized_arrivals=True,
        ).run(SLOTS)

    res = benchmark.pedantic(run, rounds=3, iterations=1)
    assert res.metrics.n_slots == SLOTS
