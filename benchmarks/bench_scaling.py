"""Benchmark CPLX-K: the scaling experiment itself (its internal checks
assert near-linear growth in k and d·k)."""

from repro.experiments.registry import run_experiment


def test_cplx_k_experiment(benchmark):
    res = benchmark.pedantic(
        run_experiment, args=("CPLX-K",), kwargs={"repeats": 3}, rounds=1, iterations=1
    )
    assert res.passed, res.render()
