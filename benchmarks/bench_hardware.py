"""Benchmark HW: the register-level scheduler units (and the cycle-count
experiment itself)."""

from repro.experiments.registry import run_experiment
from repro.hardware.bfa_unit import BreakFirstAvailableUnit, ParallelBFAUnit
from repro.hardware.fa_unit import FirstAvailableUnit
from repro.hardware.registers import RequestRegister
from repro.util.rng import make_rng


def _requests(n, k, seed):
    rng = make_rng(seed)
    return [
        (i, w) for i in range(n) for w in range(k) if rng.random() < 0.4
    ]


def test_hw_experiment(benchmark):
    res = benchmark.pedantic(
        run_experiment, args=("HW",), rounds=1, iterations=1
    )
    assert res.passed, res.render()


def test_fa_unit_k32(benchmark):
    reqs = _requests(16, 32, 1)

    def run():
        reg = RequestRegister.from_requests(16, 32, reqs)
        return FirstAvailableUnit(32, 1, 1).run(reg)

    _grants, cycles = benchmark(run)
    assert cycles == 32


def test_bfa_serial_unit_k32(benchmark):
    reqs = _requests(16, 32, 2)

    def run():
        reg = RequestRegister.from_requests(16, 32, reqs)
        return BreakFirstAvailableUnit(32, 1, 1).run(reg)

    _grants, cycles = benchmark(run)
    assert cycles == 1 + 3 * 31 + 2


def test_bfa_parallel_unit_k32(benchmark):
    reqs = _requests(16, 32, 3)

    def run():
        reg = RequestRegister.from_requests(16, 32, reqs)
        return ParallelBFAUnit(32, 1, 1).run(reg)

    _grants, cycles = benchmark(run)
    assert cycles == 1 + 31 + 2
