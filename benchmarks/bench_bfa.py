"""Benchmark TAB3 / CPLX-K (Break-and-First-Available): the O(dk) algorithm,
its optimality sweep, and its (k, d) scaling."""

import pytest

from repro.analysis.instances import random_request_vector
from repro.core.baseline import HopcroftKarpScheduler
from repro.core.break_first_available import (
    BreakFirstAvailableScheduler,
    bfa_fast,
)
from repro.experiments.registry import run_experiment
from repro.util.rng import make_rng


def test_tab3_bfa_optimality_sweep(benchmark):
    res = benchmark.pedantic(
        run_experiment, args=("TAB3",), kwargs={"trials": 10}, rounds=1, iterations=1
    )
    assert res.passed, res.render()


def test_bfa_single_pass_k64(benchmark, circular_64):
    grants, _stats = benchmark(
        bfa_fast, circular_64.request_vector, circular_64.available, 2, 2
    )
    assert len(grants) == HopcroftKarpScheduler().schedule(circular_64).n_granted


@pytest.mark.parametrize("k,d", [(256, 3), (1024, 3), (1024, 9), (4096, 3)])
def test_bfa_scaling_in_k_and_d(benchmark, k, d):
    """CPLX-K series: one BFA pass across (k, d) — linear in d·k."""
    rng = make_rng(k * d)
    e = (d - 1) // 2
    vec = random_request_vector(k, 16, 0.9, rng)
    avail = [True] * k
    grants, stats = benchmark(bfa_fast, vec, avail, e, d - 1 - e)
    assert 0 < len(grants) <= k
    assert stats["reduced_graphs"] <= d


def test_bfa_scheduler_end_to_end(benchmark, circular_64):
    scheduler = BreakFirstAvailableScheduler()
    res = benchmark(scheduler.schedule, circular_64)
    assert res.n_granted > 0


def test_bfa_with_occupied_channels(benchmark, rng):
    """Section-V variant: 30% of channels occupied."""
    from repro.analysis.instances import random_circular_instance

    rg = random_circular_instance(
        64, 2, 2, load=1.0, occupied_fraction=0.3, rng=rng
    )
    grants, _ = benchmark(bfa_fast, rg.request_vector, rg.available, 2, 2)
    assert len(grants) == HopcroftKarpScheduler().schedule(rg).n_granted
