"""Benchmarks FIG2–FIG5: regenerate each paper figure and verify its shape."""

from repro.experiments.registry import run_experiment


def test_fig2_conversion_graphs(benchmark):
    res = benchmark(run_experiment, "FIG2")
    assert res.passed, res.render()


def test_fig3_request_graphs(benchmark):
    res = benchmark(run_experiment, "FIG3")
    assert res.passed, res.render()


def test_fig4_maximum_matchings(benchmark):
    res = benchmark(run_experiment, "FIG4")
    assert res.passed, res.render()


def test_fig5_breaking(benchmark):
    res = benchmark(run_experiment, "FIG5")
    assert res.passed, res.render()


def test_intro_example(benchmark):
    res = benchmark(run_experiment, "INTRO")
    assert res.passed, res.render()
