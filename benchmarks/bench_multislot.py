"""Benchmark MULTI: Section-V multi-slot / occupied-channel scheduling."""

from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.experiments.registry import run_experiment
from repro.graphs.conversion import CircularConversion
from repro.sim.duration import GeometricDuration
from repro.sim.engine import SlottedSimulator
from repro.sim.traffic import BernoulliTraffic


def test_multi_experiment(benchmark):
    res = benchmark.pedantic(
        run_experiment,
        args=("MULTI",),
        kwargs={"trials": 25, "slots": 120},
        rounds=1,
        iterations=1,
    )
    assert res.passed, res.render()


def _run(disturb: bool):
    sim = SlottedSimulator(
        4,
        CircularConversion(8, 1, 1),
        BreakFirstAvailableScheduler(),
        BernoulliTraffic(4, 8, 0.35, durations=GeometricDuration(4.0)),
        disturb=disturb,
        seed=7,
    )
    return sim.run(100, warmup=20)


def test_burst_mode_simulation(benchmark):
    res = benchmark(_run, False)
    assert res.metrics.n_slots == 100


def test_disturb_mode_simulation(benchmark):
    """Disturb mode pays a rescheduling pass per slot; this quantifies it."""
    res = benchmark(_run, True)
    assert res.metrics.n_slots == 100
