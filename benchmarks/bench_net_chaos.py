"""Benchmark the chaos proxy's passthrough tax.

The network chaos drill (``tests/test_net_chaos.py``) routes every
frame through :class:`repro.net.chaos.ChaosProxy`.  For the drill's
timing assertions to mean anything, the proxy itself must be cheap when
its plan is empty — this benchmark measures submit+tick round-trip
latency direct vs proxied and reports the overhead ratio.  It is
informational (the harness does not gate on it): a proxy hop doubles
the kernel socket crossings, so some overhead is expected; what matters
is that it stays a small constant factor, not a per-frame stall.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_net_chaos.py

or under pytest for a smoke-sized run with shape assertions.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

from repro.core.distributed import SlotRequest
from repro.core.first_available import FirstAvailableScheduler
from repro.faults.net import NetFaultPlan
from repro.graphs.conversion import NonCircularConversion
from repro.net.chaos import ChaosProxy
from repro.net.client import NetClient
from repro.net.server import NetServer
from repro.service import SchedulingService
from repro.util.tables import format_table

N_FIBERS, K = 8, 4


@dataclass
class ChaosBenchResult:
    path: str
    slots: int
    submitted: int
    granted: int
    elapsed: float
    slots_per_second: float


async def _drive(port: int, slots: int) -> tuple[int, int, float]:
    client = await NetClient.connect("127.0.0.1", port)
    submitted = granted = 0
    t0 = time.perf_counter()
    try:
        for slot in range(slots):
            futs = [
                client.submit_nowait(
                    SlotRequest((slot + j) % N_FIBERS, j % K, j % N_FIBERS)
                )
                for j in range(4)
            ]
            submitted += len(futs)
            await client.tick(1)
            for outcome in await asyncio.gather(*futs):
                granted += outcome.__class__.__name__ == "Grant"
    finally:
        elapsed = time.perf_counter() - t0
        await client.close()
    return submitted, granted, elapsed


def run_chaos_bench(*, proxied: bool, slots: int = 200) -> ChaosBenchResult:
    async def go() -> ChaosBenchResult:
        service = SchedulingService(
            N_FIBERS,
            NonCircularConversion(K, 1, 1),
            FirstAvailableScheduler(),
            durability=False,
        )
        server = NetServer(service)
        await server.start()
        proxy = None
        try:
            port = server.port
            if proxied:
                proxy = ChaosProxy(
                    "127.0.0.1", server.port, NetFaultPlan()
                )
                await proxy.start()
                port = proxy.port
            submitted, granted, elapsed = await _drive(port, slots)
        finally:
            if proxy is not None:
                await proxy.close()
            await server.stop()
            await service.stop()
        return ChaosBenchResult(
            path="proxied" if proxied else "direct",
            slots=slots,
            submitted=submitted,
            granted=granted,
            elapsed=elapsed,
            slots_per_second=slots / elapsed if elapsed > 0 else 0.0,
        )

    return asyncio.run(go())


def render(results: list[ChaosBenchResult]) -> str:
    return format_table(
        ["path", "slots", "submitted", "granted", "elapsed (s)", "slots/s"],
        [
            (r.path, r.slots, r.submitted, r.granted,
             round(r.elapsed, 4), round(r.slots_per_second, 1))
            for r in results
        ],
        title="Chaos proxy passthrough tax (empty fault plan): "
        "direct TCP vs client -> proxy -> server",
    )


# -- pytest entry points (smoke-sized: shapes, not absolute speed) ----------

def test_chaos_proxy_passthrough_shape():
    direct = run_chaos_bench(proxied=False, slots=30)
    proxied = run_chaos_bench(proxied=True, slots=30)
    for r in (direct, proxied):
        assert r.submitted == 4 * 30
        assert r.granted > 0
        assert r.slots_per_second > 0
    # Identical service semantics on both paths.
    assert proxied.granted == direct.granted


def main() -> None:
    direct = run_chaos_bench(proxied=False)
    proxied = run_chaos_bench(proxied=True)
    print(render([direct, proxied]))
    ratio = direct.elapsed and proxied.elapsed / direct.elapsed
    print(f"proxy overhead: {ratio:.2f}x elapsed (informational)")


if __name__ == "__main__":
    main()
