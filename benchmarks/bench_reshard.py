"""Benchmark live shard migration: the pause a move costs, in ticks.

Run standalone for the full sweep::

    PYTHONPATH=src python benchmarks/bench_reshard.py

or via ``benchmarks/harness.py`` (the ``reshard`` group) for the gated
quick run.  A :class:`~repro.net.procservice.ProcessShardedService`
ticks through a seeded request schedule while shards ping-pong between
its two workers at a fixed cadence.  Two numbers come out:

* the **baseline tick latency** of the same service between moves
  (real worker-process RPCs, so pause and tick share every fixed cost);
* the **migration pause** — ``MigrationReport.pause_seconds``, the
  wall-clock the engine spent in quiesce → export → adopt → flip →
  release while the tick loop was held.

The headline (and the gated) figure is their ratio, **ticks stalled per
move**: how many slots of scheduling work one live migration displaces.
The handoff payload carries the shard's full journal, so the pause
grows with history — the sweep reports payload bytes alongside so a
regression in either shows up distinctly.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

import numpy as np

from repro.core.distributed import SlotRequest
from repro.core.first_available import FirstAvailableScheduler
from repro.graphs.conversion import NonCircularConversion
from repro.net.procservice import ProcessShardedService
from repro.util.rng import make_rng
from repro.util.tables import format_table


@dataclass
class ReshardBenchResult:
    ticks: int
    migrations: int
    tick_p50_s: float
    tick_p99_s: float
    pause_p50_s: float
    pause_p99_s: float
    payload_p50_bytes: float
    stall_ticks: float  # pause_p50 / tick_p50
    conserved: bool


def run_reshard_bench(
    ticks: int = 120,
    *,
    n_fibers: int = 8,
    k: int = 8,
    migrate_every: int = 10,
    load: float = 0.5,
    seed: int = 29,
) -> ReshardBenchResult:
    """Tick a two-worker service ``ticks`` times, migrating one shard
    every ``migrate_every`` ticks (round-robin over the shards, always
    to the other worker), and time both activities."""
    rng = make_rng(seed)
    schedule = []
    for _ in range(ticks):
        slot = []
        for i in range(n_fibers):
            for w in range(k):
                if rng.random() < load:
                    slot.append(
                        SlotRequest(
                            i,
                            w,
                            int(rng.integers(n_fibers)),
                            duration=int(rng.integers(1, 3)),
                        )
                    )
        schedule.append(slot)

    async def go():
        import time

        service = ProcessShardedService(
            n_fibers,
            NonCircularConversion(k, 1, 1),
            FirstAvailableScheduler(),
            n_workers=2,
        )
        tick_s = []
        pause_s = []
        payload_b = []
        futures = []
        submitted = resolved = 0
        try:
            for tick, slot in enumerate(schedule):
                if tick and tick % migrate_every == 0:
                    shard = (tick // migrate_every - 1) % n_fibers
                    destination = 1 - service.placement[shard]
                    report = service.migrate_shard(shard, destination)
                    pause_s.append(report.pause_seconds)
                    payload_b.append(report.payload_bytes)
                for r in slot:
                    futures.append(service.submit_nowait(r))
                    submitted += 1
                t0 = time.perf_counter()
                await service.tick()
                tick_s.append(time.perf_counter() - t0)
            outcomes = await asyncio.gather(*futures)
            resolved = len(outcomes)
        finally:
            await service.stop()
        return tick_s, pause_s, payload_b, submitted, resolved

    tick_s, pause_s, payload_b, submitted, resolved = asyncio.run(go())
    tick_p50 = float(np.percentile(tick_s, 50))
    pause_p50 = float(np.percentile(pause_s, 50))
    return ReshardBenchResult(
        ticks=len(tick_s),
        migrations=len(pause_s),
        tick_p50_s=tick_p50,
        tick_p99_s=float(np.percentile(tick_s, 99)),
        pause_p50_s=pause_p50,
        pause_p99_s=float(np.percentile(pause_s, 99)),
        payload_p50_bytes=float(np.percentile(payload_b, 50)),
        stall_ticks=pause_p50 / tick_p50,
        conserved=submitted == resolved,
    )


def main() -> None:
    rows = []
    for ticks, every in ((120, 10), (240, 10), (240, 30)):
        r = run_reshard_bench(ticks, migrate_every=every)
        rows.append(
            [
                f"{ticks}/{every}",
                r.migrations,
                f"{r.tick_p50_s * 1e3:.2f}",
                f"{r.pause_p50_s * 1e3:.2f}",
                f"{r.payload_p50_bytes / 1024:.1f}",
                f"{r.stall_ticks:.1f}",
                "yes" if r.conserved else "NO",
            ]
        )
    print(
        format_table(
            [
                "ticks/cadence",
                "moves",
                "tick p50 (ms)",
                "pause p50 (ms)",
                "payload p50 (KiB)",
                "stall (ticks)",
                "conserved",
            ],
            rows,
        )
    )


# -- pytest smoke -------------------------------------------------------------


def test_reshard_bench_smoke():
    r = run_reshard_bench(30, migrate_every=10, n_fibers=4, k=4)
    assert r.migrations == 2
    assert r.conserved
    assert r.pause_p50_s > 0
    assert r.stall_ticks > 0


if __name__ == "__main__":
    main()
