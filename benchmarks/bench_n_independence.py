"""Benchmark CPLX-N: per-output scheduling cost is independent of the
interconnect size N (the paper's "distributed" headline)."""

import pytest

from repro.analysis.instances import random_request_vector
from repro.core.break_first_available import bfa_fast
from repro.experiments.registry import run_experiment
from repro.util.rng import make_rng


def test_cplx_n_experiment(benchmark):
    res = benchmark.pedantic(
        run_experiment, args=("CPLX-N",), rounds=1, iterations=1
    )
    assert res.passed, res.render()


@pytest.mark.parametrize("n_fibers", [4, 64, 1024])
def test_per_output_bfa_flat_in_n(benchmark, n_fibers):
    """The timings of this series should be flat across N: only the request
    counts (which saturate) depend on the interconnect size."""
    k, e, f = 32, 1, 1
    rng = make_rng(n_fibers)
    vec = random_request_vector(k, n_fibers, 0.9, rng)
    avail = [True] * k
    grants, _ = benchmark(bfa_fast, vec, avail, e, f)
    assert len(grants) <= k
