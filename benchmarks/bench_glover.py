"""Benchmark TAB1: Glover's algorithm on convex bipartite instances."""

from repro.experiments.registry import run_experiment
from repro.graphs.convex import ConvexInstance
from repro.graphs.hopcroft_karp import hopcroft_karp
from repro.util.rng import make_rng


def _random_instance(n_left: int, n_right: int, seed: int) -> ConvexInstance:
    rng = make_rng(seed)
    intervals = []
    for _ in range(n_left):
        lo = int(rng.integers(n_right))
        hi = min(n_right - 1, lo + int(rng.integers(1, max(2, n_right // 4))))
        intervals.append((lo, hi))
    return ConvexInstance(tuple(intervals), n_right)


def test_tab1_glover_sweep(benchmark):
    res = benchmark.pedantic(
        run_experiment, args=("TAB1",), kwargs={"trials": 15}, rounds=1, iterations=1
    )
    assert res.passed, res.render()


def test_glover_heap_solver_large(benchmark):
    inst = _random_instance(512, 256, seed=1)
    matching = benchmark(inst.solve)
    assert len(matching) == len(hopcroft_karp(inst.to_graph()))


def test_glover_first_available_interval_form(benchmark):
    inst = _random_instance(512, 256, seed=2)
    ordered = ConvexInstance(
        tuple(sorted(inst.intervals)), inst.n_right
    )
    ends = [hi for _lo, hi in sorted(inst.intervals)]
    if ends != sorted(ends):  # FA needs monotone END; fall back to Glover
        matching = benchmark(ordered.solve)
    else:
        matching = benchmark(ordered.solve_first_available)
    assert len(matching) == len(hopcroft_karp(ordered.to_graph()))
