"""Benchmarks QOS / ANALYT / BATCH: the extension experiments and the raw
batch-vectorization speed."""

import numpy as np

from repro.core.batch import batch_first_available
from repro.core.break_first_available import BreakFirstAvailableScheduler
from repro.core.first_available import first_available_fast
from repro.core.priority import PriorityScheduler
from repro.experiments.registry import run_experiment
from repro.graphs.conversion import CircularConversion
from repro.util.rng import make_rng


def test_qos_experiment(benchmark):
    res = benchmark.pedantic(
        run_experiment, args=("QOS",), kwargs={"trials": 60}, rounds=1, iterations=1
    )
    assert res.passed, res.render()


def test_analyt_experiment(benchmark):
    res = benchmark.pedantic(
        run_experiment,
        args=("ANALYT",),
        kwargs={"n_fibers": 4, "k": 8, "slots": 250},
        rounds=1,
        iterations=1,
    )
    assert res.passed, res.render()


def test_batch_experiment(benchmark):
    res = benchmark.pedantic(
        run_experiment,
        args=("BATCH",),
        kwargs={},
        rounds=1,
        iterations=1,
    )
    assert res.passed, res.render()


def test_batch_vectorized_m256_k64(benchmark):
    rng = make_rng(1)
    req = rng.binomial(16, 0.9 / 16, size=(256, 64))
    assign = benchmark(batch_first_available, req, None, 2, 2)
    assert assign.shape == (256, 64)


def test_scalar_loop_m256_k64(benchmark):
    """Baseline for the vectorized benchmark above."""
    rng = make_rng(1)
    req = rng.binomial(16, 0.9 / 16, size=(256, 64))

    def run():
        total = 0
        for m in range(256):
            total += len(
                first_available_fast(req[m].tolist(), [True] * 64, 2, 2)
            )
        return total

    total = benchmark(run)
    vec = batch_first_available(req, None, 2, 2)
    assert total == int((vec >= 0).sum())


def test_batch_bfa_vectorized_m1024_k64(benchmark):
    from repro.core.batch_bfa import batch_break_first_available

    rng = make_rng(3)
    req = rng.binomial(16, 0.9 / 16, size=(1024, 64))
    assign = benchmark(batch_break_first_available, req, None, 2, 2)
    assert assign.shape == (1024, 64)


def test_priority_two_classes(benchmark):
    scheme = CircularConversion(32, 1, 1)
    prio = PriorityScheduler(BreakFirstAvailableScheduler())
    rng = make_rng(2)
    high = rng.binomial(16, 0.5 / 16, size=32).tolist()
    low = rng.binomial(16, 0.8 / 16, size=32).tolist()
    sched = benchmark(prio.schedule, scheme, [high, low])
    assert sched.n_classes == 2
