"""Benchmarks PERF-TYPE / PERF-BURST / ABLATE: the extended performance
studies and design-choice ablations."""

from repro.experiments.registry import run_experiment


def test_perf_type_experiment(benchmark):
    res = benchmark.pedantic(
        run_experiment,
        args=("PERF-TYPE",),
        kwargs={"n_fibers": 4, "k": 8, "slots": 150},
        rounds=1,
        iterations=1,
    )
    assert res.passed, res.render()


def test_perf_burst_experiment(benchmark):
    res = benchmark.pedantic(
        run_experiment,
        args=("PERF-BURST",),
        kwargs={"n_fibers": 4, "k": 8, "slots": 200},
        rounds=1,
        iterations=1,
    )
    assert res.passed, res.render()


def test_ablate_experiment(benchmark):
    res = benchmark.pedantic(
        run_experiment,
        args=("ABLATE",),
        kwargs={"trials": 60},
        rounds=1,
        iterations=1,
    )
    assert res.passed, res.render()


def test_perf_k_experiment(benchmark):
    res = benchmark.pedantic(
        run_experiment,
        args=("PERF-K",),
        kwargs={"n_fibers": 4, "slots": 200},
        rounds=1,
        iterations=1,
    )
    assert res.passed, res.render()
